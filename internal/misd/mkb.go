package misd

import (
	"fmt"
	"sort"

	"repro/internal/relation"
)

// RelationInfo is the MKB's registration record for one base relation
// (Equation 3: IS.R(A1,...,An)) plus the database statistics the cost model
// assumes are known (Section 6.1): cardinality, attribute sizes, local
// selectivity.
type RelationInfo struct {
	Ref    RelRef
	Schema *relation.Schema
	// Card is the advertised cardinality |R|. The space simulator keeps it
	// in sync with the actual extent; scenario generators may also set it
	// directly for purely analytic runs.
	Card int
	// LocalSelectivity is the selectivity σ of the relation's local
	// selection condition within a view (Section 6.1 assumption 4).
	// Zero means "use the MKB default".
	LocalSelectivity float64
}

// MKB is the Meta Knowledge Base: registered relations and the semantic
// constraints between them. It also stores the global statistics the cost
// model treats as uniform (join selectivity js, blocking factor bfr).
type MKB struct {
	relations map[string]*RelationInfo
	types     []TypeConstraint
	joins     []JoinConstraint
	pcs       []PCConstraint

	// Defaults for the cost model (Table 1 values).
	DefaultJoinSelectivity float64 // js, default 0.005
	DefaultSelectivity     float64 // σ, default 0.5
	BlockingFactor         int     // bfr, default 10
}

// NewMKB returns an empty MKB with the paper's Table 1 defaults.
func NewMKB() *MKB {
	return &MKB{
		relations:              make(map[string]*RelationInfo),
		DefaultJoinSelectivity: 0.005,
		DefaultSelectivity:     0.5,
		BlockingFactor:         10,
	}
}

// RegisterRelation records a base relation and derives type constraints from
// its schema. Re-registering a relation replaces its record (schema changes
// are modelled as unregister/register by the space layer).
func (m *MKB) RegisterRelation(info RelationInfo) error {
	if info.Ref.Rel == "" {
		return fmt.Errorf("misd: relation registration without a name")
	}
	if info.Schema == nil {
		return fmt.Errorf("misd: relation %s registered without a schema", info.Ref)
	}
	cp := info
	m.relations[info.Ref.Key()] = &cp
	for _, a := range info.Schema.Attrs() {
		m.types = append(m.types, TypeConstraint{Rel: info.Ref, Attr: a.Name, Type: a.Type, Size: a.Size})
	}
	return nil
}

// UnregisterRelation removes a relation and all constraints mentioning it
// (the MKB Evolver's reaction to delete-relation).
func (m *MKB) UnregisterRelation(rel string) {
	delete(m.relations, rel)
	m.types = filterTypes(m.types, func(t TypeConstraint) bool { return t.Rel.Key() != rel })
	m.joins = filterJoins(m.joins, func(j JoinConstraint) bool { return j.R1.Key() != rel && j.R2.Key() != rel })
	m.pcs = filterPCs(m.pcs, func(p PCConstraint) bool { return p.Left.Rel.Key() != rel && p.Right.Rel.Key() != rel })
}

// DropAttribute removes one attribute from a registered relation and prunes
// constraints that mention it (the MKB Evolver's reaction to
// delete-attribute).
func (m *MKB) DropAttribute(rel, attr string) error {
	info, ok := m.relations[rel]
	if !ok {
		return fmt.Errorf("misd: unknown relation %q", rel)
	}
	if !info.Schema.Has(attr) {
		return fmt.Errorf("misd: relation %s has no attribute %q", rel, attr)
	}
	var keep []relation.Attribute
	for _, a := range info.Schema.Attrs() {
		if a.Name != attr {
			keep = append(keep, a)
		}
	}
	info.Schema = relation.NewSchema(keep...)
	m.types = filterTypes(m.types, func(t TypeConstraint) bool {
		return !(t.Rel.Key() == rel && t.Attr == attr)
	})
	m.joins = filterJoins(m.joins, func(j JoinConstraint) bool {
		for _, c := range j.Clauses {
			if (j.R1.Key() == rel && c.Attr1 == attr) || (j.R2.Key() == rel && c.Attr2 == attr) {
				return false
			}
		}
		return true
	})
	m.pcs = filterPCs(m.pcs, func(p PCConstraint) bool {
		return !fragmentUses(p.Left, rel, attr) && !fragmentUses(p.Right, rel, attr)
	})
	return nil
}

func fragmentUses(f Fragment, rel, attr string) bool {
	if f.Rel.Key() != rel {
		return false
	}
	for _, a := range f.Attrs {
		if a == attr {
			return true
		}
	}
	if f.Cond != nil {
		for _, a := range f.Cond.Attrs() {
			if a == attr {
				return true
			}
		}
	}
	return false
}

// Relation returns the registration record for a relation name, or nil.
func (m *MKB) Relation(rel string) *RelationInfo { return m.relations[rel] }

// Relations returns all registered relations sorted by name.
func (m *MKB) Relations() []*RelationInfo {
	out := make([]*RelationInfo, 0, len(m.relations))
	for _, r := range m.relations {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ref.Rel < out[j].Ref.Rel })
	return out
}

// SetCard updates the advertised cardinality of a relation.
func (m *MKB) SetCard(rel string, card int) {
	if info, ok := m.relations[rel]; ok {
		info.Card = card
	}
}

// AddJoinConstraint records JC_{R1,R2}.
func (m *MKB) AddJoinConstraint(jc JoinConstraint) error {
	if len(jc.Clauses) == 0 {
		return fmt.Errorf("misd: join constraint with no clauses: %s", jc)
	}
	m.joins = append(m.joins, jc)
	return nil
}

// AddPCConstraint records a partial/complete constraint.
func (m *MKB) AddPCConstraint(pc PCConstraint) error {
	if err := pc.Validate(); err != nil {
		return err
	}
	m.pcs = append(m.pcs, pc)
	return nil
}

// JoinConstraints returns every join constraint involving rel (with rel
// normalized to the R1 side).
func (m *MKB) JoinConstraints(rel string) []JoinConstraint {
	var out []JoinConstraint
	for _, j := range m.joins {
		switch {
		case j.R1.Key() == rel:
			out = append(out, j)
		case j.R2.Key() == rel:
			out = append(out, j.Reversed())
		}
	}
	return out
}

// JoinConstraintBetween returns the join constraint relating r1 and r2 (with
// r1 on the left), or false.
func (m *MKB) JoinConstraintBetween(r1, r2 string) (JoinConstraint, bool) {
	for _, j := range m.joins {
		if j.R1.Key() == r1 && j.R2.Key() == r2 {
			return j, true
		}
		if j.R1.Key() == r2 && j.R2.Key() == r1 {
			return j.Reversed(), true
		}
	}
	return JoinConstraint{}, false
}

// PCConstraints returns every PC constraint whose left fragment is over rel,
// reversing stored constraints as needed. These are the candidates for
// replacing rel by another relation.
func (m *MKB) PCConstraints(rel string) []PCConstraint {
	var out []PCConstraint
	for _, p := range m.pcs {
		if p.Left.Rel.Key() == rel {
			out = append(out, p)
		}
		if p.Right.Rel.Key() == rel {
			out = append(out, p.Reversed())
		}
	}
	return out
}

// PCBetween returns the PC constraint with left fragment over r1 and right
// fragment over r2, or false.
func (m *MKB) PCBetween(r1, r2 string) (PCConstraint, bool) {
	for _, p := range m.PCConstraints(r1) {
		if p.Right.Rel.Key() == r2 {
			return p, true
		}
	}
	return PCConstraint{}, false
}

// AllPCConstraints returns the stored PC constraints.
func (m *MKB) AllPCConstraints() []PCConstraint { return m.pcs }

// AllJoinConstraints returns the stored join constraints.
func (m *MKB) AllJoinConstraints() []JoinConstraint { return m.joins }

// TypeOf returns the recorded type of Rel.Attr, or TypeInvalid.
func (m *MKB) TypeOf(rel, attr string) relation.Type {
	if info, ok := m.relations[rel]; ok {
		if i := info.Schema.IndexOf(attr); i >= 0 {
			return info.Schema.Attr(i).Type
		}
	}
	return relation.TypeInvalid
}

// CheckConsistency verifies that every constraint references registered
// relations and existing attributes with compatible types — the paper's MKB
// Consistency Checker component.
func (m *MKB) CheckConsistency() []error {
	var errs []error
	attrOK := func(rel, attr string) bool {
		info, ok := m.relations[rel]
		return ok && info.Schema.Has(attr)
	}
	for _, j := range m.joins {
		for _, c := range j.Clauses {
			if !attrOK(j.R1.Key(), c.Attr1) {
				errs = append(errs, fmt.Errorf("misd: join constraint %s references missing %s.%s", j, j.R1, c.Attr1))
			}
			if !attrOK(j.R2.Key(), c.Attr2) {
				errs = append(errs, fmt.Errorf("misd: join constraint %s references missing %s.%s", j, j.R2, c.Attr2))
			}
		}
	}
	for _, p := range m.pcs {
		for i := range p.Left.Attrs {
			la, ra := p.Left.Attrs[i], p.Right.Attrs[i]
			if !attrOK(p.Left.Rel.Key(), la) {
				errs = append(errs, fmt.Errorf("misd: PC constraint %s references missing %s.%s", p, p.Left.Rel, la))
				continue
			}
			if !attrOK(p.Right.Rel.Key(), ra) {
				errs = append(errs, fmt.Errorf("misd: PC constraint %s references missing %s.%s", p, p.Right.Rel, ra))
				continue
			}
			lt, rt := m.TypeOf(p.Left.Rel.Key(), la), m.TypeOf(p.Right.Rel.Key(), ra)
			if lt != rt {
				errs = append(errs, fmt.Errorf("misd: PC constraint %s pairs %s.%s (%s) with %s.%s (%s)",
					p, p.Left.Rel, la, lt, p.Right.Rel, ra, rt))
			}
		}
	}
	return errs
}

func filterTypes(in []TypeConstraint, keep func(TypeConstraint) bool) []TypeConstraint {
	out := in[:0]
	for _, t := range in {
		if keep(t) {
			out = append(out, t)
		}
	}
	return out
}

func filterJoins(in []JoinConstraint, keep func(JoinConstraint) bool) []JoinConstraint {
	out := in[:0]
	for _, j := range in {
		if keep(j) {
			out = append(out, j)
		}
	}
	return out
}

func filterPCs(in []PCConstraint, keep func(PCConstraint) bool) []PCConstraint {
	out := in[:0]
	for _, p := range in {
		if keep(p) {
			out = append(out, p)
		}
	}
	return out
}
