package misd

import (
	"fmt"
	"strings"

	"repro/internal/relation"
)

// RelRef names a base relation, optionally qualified by its information
// source: "IS1.R" or just "R" when relation names are globally unique.
type RelRef struct {
	Source string
	Rel    string
}

// String renders "Source.Rel" or "Rel".
func (r RelRef) String() string {
	if r.Source == "" {
		return r.Rel
	}
	return r.Source + "." + r.Rel
}

// Key returns the lookup key used by the MKB index; relations are resolved
// by bare name, mirroring the paper's globally-distinct relation names.
func (r RelRef) Key() string { return r.Rel }

// TypeConstraint is the type-integrity constraint TC_{R.A}: attribute A of
// relation R has the given domain type (and simulated byte width).
type TypeConstraint struct {
	Rel  RelRef
	Attr string
	Type relation.Type
	Size int // bytes; 0 ⇒ default by type
}

// String renders the constraint in MKB dump syntax.
func (t TypeConstraint) String() string {
	return fmt.Sprintf("TC(%s.%s) = %s", t.Rel, t.Attr, t.Type)
}

// JoinConstraint is JC_{R1,R2}: the conjunction of primitive clauses under
// which tuples of R1 and R2 join meaningfully (Equation 4).
type JoinConstraint struct {
	R1, R2  RelRef
	Clauses []JoinClause
}

// JoinClause is one primitive clause of a join constraint, relating an
// attribute of R1 to an attribute of R2.
type JoinClause struct {
	Attr1 string
	Op    relation.Op
	Attr2 string
}

// String renders the constraint.
func (j JoinConstraint) String() string {
	parts := make([]string, len(j.Clauses))
	for i, c := range j.Clauses {
		parts[i] = fmt.Sprintf("%s.%s %s %s.%s", j.R1, c.Attr1, c.Op, j.R2, c.Attr2)
	}
	return fmt.Sprintf("JC(%s, %s) = (%s)", j.R1, j.R2, strings.Join(parts, " AND "))
}

// Reversed returns the constraint with sides swapped, so lookups are
// symmetric.
func (j JoinConstraint) Reversed() JoinConstraint {
	out := JoinConstraint{R1: j.R2, R2: j.R1, Clauses: make([]JoinClause, len(j.Clauses))}
	for i, c := range j.Clauses {
		out.Clauses[i] = JoinClause{Attr1: c.Attr2, Op: reverseOp(c.Op), Attr2: c.Attr1}
	}
	return out
}

func reverseOp(op relation.Op) relation.Op {
	switch op {
	case relation.OpLT:
		return relation.OpGT
	case relation.OpLE:
		return relation.OpGE
	case relation.OpGT:
		return relation.OpLT
	case relation.OpGE:
		return relation.OpLE
	default:
		return op // = and <> are symmetric
	}
}

// Rel is the containment relation θ of a PC constraint.
type Rel uint8

// Containment relations: the left fragment is a subset of, equal to, or a
// superset of the right fragment.
const (
	Subset   Rel = iota // ⊆
	Equal               // ≡
	Superset            // ⊇
)

// String renders the containment symbol in ASCII.
func (r Rel) String() string {
	switch r {
	case Subset:
		return "<="
	case Equal:
		return "=="
	default:
		return ">="
	}
}

// Flip mirrors the containment for a swapped constraint.
func (r Rel) Flip() Rel {
	switch r {
	case Subset:
		return Superset
	case Superset:
		return Subset
	default:
		return Equal
	}
}

// Fragment is one side of a PC constraint: a projection over Attrs of a
// selection (Cond, possibly relation.True{}) of relation Rel (Equation 5).
// Selectivity is the known selectivity σ of Cond over Rel's extent; 1.0 for
// the tautologically true condition.
type Fragment struct {
	Rel         RelRef
	Attrs       []string
	Cond        relation.Condition
	Selectivity float64
}

// HasSelection reports whether the fragment carries a non-trivial selection
// condition — the "yes"/"no" axis of Figure 9.
func (f Fragment) HasSelection() bool {
	if f.Cond == nil {
		return false
	}
	if _, ok := f.Cond.(relation.True); ok {
		return false
	}
	if a, ok := f.Cond.(relation.And); ok && len(a) == 0 {
		return false
	}
	return true
}

// EffectiveSelectivity returns σ for the fragment: 1 when there is no
// selection, otherwise the declared selectivity (default 0.5 when unset,
// the experiments' Table 1 value).
func (f Fragment) EffectiveSelectivity() float64 {
	if !f.HasSelection() {
		return 1
	}
	if f.Selectivity <= 0 || f.Selectivity > 1 {
		return 0.5
	}
	return f.Selectivity
}

// String renders the fragment as "π_{A,B}(σ_{cond}(R))".
func (f Fragment) String() string {
	inner := f.Rel.String()
	if f.HasSelection() {
		inner = fmt.Sprintf("select[%s](%s)", f.Cond, inner)
	}
	return fmt.Sprintf("project[%s](%s)", strings.Join(f.Attrs, ","), inner)
}

// PCConstraint is a partial/complete constraint PC_{R1,R2} (Equation 5):
// Fragment1 θ Fragment2, where θ ∈ {⊆, ≡, ⊇}. The two fragments must
// project the same number of attributes; the i-th attributes correspond
// (and have equal types per the TC requirement in the paper).
type PCConstraint struct {
	Left, Right Fragment
	Rel         Rel
}

// String renders the constraint.
func (p PCConstraint) String() string {
	return fmt.Sprintf("PC: %s %s %s", p.Left, p.Rel, p.Right)
}

// Reversed swaps sides, flipping the containment.
func (p PCConstraint) Reversed() PCConstraint {
	return PCConstraint{Left: p.Right, Right: p.Left, Rel: p.Rel.Flip()}
}

// Validate checks structural well-formedness.
func (p PCConstraint) Validate() error {
	if len(p.Left.Attrs) == 0 || len(p.Right.Attrs) == 0 {
		return fmt.Errorf("misd: PC constraint with empty projection: %s", p)
	}
	if len(p.Left.Attrs) != len(p.Right.Attrs) {
		return fmt.Errorf("misd: PC constraint projects %d vs %d attributes: %s",
			len(p.Left.Attrs), len(p.Right.Attrs), p)
	}
	return nil
}

// AttrMapping returns the attribute correspondence Left→Right implied by
// the positional pairing of the projections.
func (p PCConstraint) AttrMapping() map[string]string {
	m := make(map[string]string, len(p.Left.Attrs))
	for i, a := range p.Left.Attrs {
		m[a] = p.Right.Attrs[i]
	}
	return m
}
