// Package maintain executes the paper's incremental view maintenance
// procedure (Algorithm 1, Section 6.1) against the simulated information
// space, measuring the messages exchanged, bytes transferred, and I/O
// operations actually incurred.
//
// It serves two purposes: keeping materialized view extents up to date
// after base-data updates (the View Maintainer component of Figure 1), and
// cross-validating the analytic cost model of internal/core — the measured
// Metrics of a real update should track the closed-form CF_M / CF_T /
// CF_I/O factors of Sections 6.2–6.4 under the same scenario.
//
// Paper mapping: Algorithm 1's site-by-site delta propagation, including
// the update-originating source's local join (n_1) and the visit order the
// cost factors assume.
package maintain
