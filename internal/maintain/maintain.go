package maintain

import (
	"fmt"
	"math"

	"repro/internal/esql"
	"repro/internal/relation"
	"repro/internal/space"
)

// Metrics are the measured counterparts of the analytic cost factors.
type Metrics struct {
	Messages int // messages between warehouse and sources
	Bytes    int // bytes moved in either direction (incl. notification)
	IO       int // simulated disk I/Os at the sources
}

// Add accumulates.
func (m *Metrics) Add(o Metrics) {
	m.Messages += o.Messages
	m.Bytes += o.Bytes
	m.IO += o.IO
}

// UpdateKind distinguishes inserts from deletes.
type UpdateKind uint8

// Update kinds.
const (
	Insert UpdateKind = iota
	Delete
)

// Update is one base-data content change.
type Update struct {
	Kind  UpdateKind
	Rel   string
	Tuple relation.Tuple
}

// Maintainer incrementally maintains one materialized view over a space.
type Maintainer struct {
	Space *space.Space
	View  *esql.ViewDef // fully qualified
	// Extent is the materialized view extent, with the view's output
	// column names.
	Extent *relation.Relation
	// BlockingFactor is bfr for the I/O simulation (default 10).
	BlockingFactor int
}

// New creates a maintainer; the initial extent must be supplied (usually
// from exec.Evaluate).
func New(sp *space.Space, view *esql.ViewDef, extent *relation.Relation) *Maintainer {
	return &Maintainer{Space: sp, View: view, Extent: extent, BlockingFactor: 10}
}

func (m *Maintainer) bfr() int {
	if m.BlockingFactor > 0 {
		return m.BlockingFactor
	}
	return 10
}

// Apply performs the base update at its source and then runs Algorithm 1 to
// bring the view extent up to date, returning the measured metrics. The
// update is applied to the base relation first ("the view maintainer brings
// the view extents up-to-date right after the IS data is updated"); delta
// derivation joins against the post-update state for inserts and the
// pre-delete state semantics via the computed delta for deletes.
func (m *Maintainer) Apply(u Update) (Metrics, error) {
	var metrics Metrics
	base := m.Space.Relation(u.Rel)
	if base == nil {
		return metrics, fmt.Errorf("maintain: unknown relation %q", u.Rel)
	}
	binding := ""
	for _, f := range m.View.From {
		if f.Rel == u.Rel {
			binding = f.Binding()
		}
	}
	switch u.Kind {
	case Insert:
		if base.Contains(u.Tuple) {
			// No-op update still notifies the warehouse.
			metrics.Messages++
			metrics.Bytes += u.Tuple.ByteSize()
			return metrics, nil
		}
		if err := m.Space.Insert(u.Rel, u.Tuple); err != nil {
			return metrics, err
		}
	case Delete:
		if !base.Contains(u.Tuple) {
			metrics.Messages++
			metrics.Bytes += u.Tuple.ByteSize()
			return metrics, nil
		}
		if err := m.Space.Delete(u.Rel, u.Tuple); err != nil {
			return metrics, err
		}
	}

	// Update notification: the source sends ΔR to the warehouse.
	metrics.Messages++
	metrics.Bytes += u.Tuple.ByteSize()

	if binding == "" {
		// The view does not reference the updated relation.
		return metrics, nil
	}

	delta, visited, err := m.propagate(u, binding, &metrics)
	if err != nil {
		return metrics, err
	}
	_ = visited

	// Fold the delta into the materialized extent.
	if err := m.fold(u.Kind, delta); err != nil {
		return metrics, err
	}
	return metrics, nil
}

// propagate runs the site-by-site delta join of Algorithm 1: the delta is
// sent to each IS holding view relations, joined there with the local
// relations (filtered by the view's WHERE clauses that become fully bound),
// and the enlarged delta returns to the warehouse.
func (m *Maintainer) propagate(u Update, updatedBinding string, metrics *Metrics) (*relation.Relation, []string, error) {
	// Seed delta: the updated tuple with columns qualified by the view
	// binding.
	base := m.Space.Relation(u.Rel)
	if base == nil {
		return nil, nil, fmt.Errorf("maintain: relation %q vanished mid-update", u.Rel)
	}
	attrs := base.Schema().Attrs()
	for i := range attrs {
		attrs[i].Name = updatedBinding + "." + attrs[i].Name
	}
	delta := relation.New("Δ", relation.NewSchema(attrs...))
	if err := delta.Insert(u.Tuple); err != nil {
		return nil, nil, err
	}
	// Apply local constant conditions on the updated relation right away;
	// a tuple failing them cannot affect the view.
	var err error
	delta, err = m.applyBoundConditions(delta)
	if err != nil {
		return nil, nil, err
	}

	// Visit order: the updating IS first (its other relations), then the
	// remaining ISs in FROM order.
	type siteRels struct {
		source string
		rels   []esql.FromItem
	}
	bySource := map[string]*siteRels{}
	var order []*siteRels
	addRel := func(f esql.FromItem) {
		src := m.Space.Home(f.Rel)
		sr, ok := bySource[src]
		if !ok {
			sr = &siteRels{source: src}
			bySource[src] = sr
			order = append(order, sr)
		}
		sr.rels = append(sr.rels, f)
	}
	updatedHome := m.Space.Home(u.Rel)
	// First the co-located relations.
	for _, f := range m.View.From {
		if f.Binding() != updatedBinding && m.Space.Home(f.Rel) == updatedHome {
			addRel(f)
		}
	}
	for _, f := range m.View.From {
		if f.Binding() != updatedBinding && m.Space.Home(f.Rel) != updatedHome {
			addRel(f)
		}
	}

	var visited []string
	for _, site := range order {
		if len(site.rels) == 0 {
			continue
		}
		visited = append(visited, site.source)
		// Send query + delta to the site.
		metrics.Messages++
		metrics.Bytes += deltaBytes(delta)
		for _, f := range site.rels {
			local := m.Space.Relation(f.Rel)
			if local == nil {
				return nil, nil, fmt.Errorf("maintain: view references missing relation %q", f.Rel)
			}
			// I/O at the source: min(scan, index retrieval per delta tuple).
			metrics.IO += m.simulateJoinIO(delta, local, f.Binding())
			joined, err := m.joinLocal(delta, local, f.Binding())
			if err != nil {
				return nil, nil, err
			}
			delta = joined
		}
		// Result returns to the warehouse.
		metrics.Messages++
		metrics.Bytes += deltaBytes(delta)
	}
	return delta, visited, nil
}

// joinLocal joins the delta with one local relation under the view's WHERE
// clauses that bind between the delta's columns and this relation.
func (m *Maintainer) joinLocal(delta, local *relation.Relation, binding string) (*relation.Relation, error) {
	attrs := local.Schema().Attrs()
	for i := range attrs {
		attrs[i].Name = binding + "." + attrs[i].Name
	}
	qualified := relation.New(local.Name, relation.NewSchema(attrs...))
	for _, t := range local.Tuples() {
		qualified.Insert(t) //nolint:errcheck
	}
	var cond relation.And
	for _, w := range m.View.Where {
		c := clauseCondition(w.Clause)
		// Usable when every referenced column exists in delta ∪ qualified.
		usable := true
		for _, a := range c.Attrs() {
			if !delta.Schema().Has(a) && !qualified.Schema().Has(a) {
				usable = false
				break
			}
		}
		// Skip conditions fully inside delta (already applied) to avoid
		// re-filtering; they are harmless but wasteful.
		if usable {
			cond = append(cond, c)
		}
	}
	joined, err := relation.Join(delta, qualified, cond)
	if err != nil {
		return nil, err
	}
	joined.Name = "Δ"
	return joined, nil
}

// applyBoundConditions filters the delta by WHERE clauses whose attributes
// are all present in the delta schema.
func (m *Maintainer) applyBoundConditions(delta *relation.Relation) (*relation.Relation, error) {
	var cond relation.And
	for _, w := range m.View.Where {
		c := clauseCondition(w.Clause)
		all := true
		for _, a := range c.Attrs() {
			if !delta.Schema().Has(a) {
				all = false
				break
			}
		}
		if all {
			cond = append(cond, c)
		}
	}
	if len(cond) == 0 {
		return delta, nil
	}
	out, err := delta.Select(cond)
	if err != nil {
		return nil, err
	}
	out.Name = "Δ"
	return out, nil
}

// simulateJoinIO charges the cheaper of a full scan and per-delta-tuple
// index retrievals, mirroring Appendix A's optimizer assumption.
func (m *Maintainer) simulateJoinIO(delta, local *relation.Relation, binding string) int {
	scan := int(math.Ceil(float64(local.Card()) / float64(m.bfr())))
	if scan < 1 {
		scan = 1
	}
	// Index path: for each delta tuple, fetch matching tuples; we estimate
	// one I/O per delta tuple per matching block.
	index := delta.Card()
	if index == 0 {
		index = 1
	}
	if scan < index {
		return scan
	}
	return index
}

// fold applies the delta to the materialized extent: project the delta onto
// the view's output columns and insert (or delete) the rows. A deleted base
// tuple's view rows may still be derivable from other base combinations
// (set semantics make multi-support possible), so deletion re-verifies each
// candidate row against the post-update space before removing it. The
// verification is local recomputation at the warehouse side and does not
// add to the network counters, matching the paper's assumption that the
// warehouse applies deltas locally.
func (m *Maintainer) fold(kind UpdateKind, delta *relation.Relation) error {
	cols := make([]string, len(m.View.Select))
	for i, s := range m.View.Select {
		cols[i] = s.Attr.Qualified()
		if !delta.Schema().Has(cols[i]) {
			// The delta never reached a relation carrying this column —
			// the update cannot affect the view.
			return nil
		}
	}
	proj, err := delta.Project(cols...)
	if err != nil {
		return err
	}
	switch kind {
	case Insert:
		for _, t := range proj.Tuples() {
			if err := m.Extent.Insert(t); err != nil {
				return err
			}
		}
	case Delete:
		still, err := m.stillDerivable(proj)
		if err != nil {
			return err
		}
		for _, t := range proj.Tuples() {
			if !still.Contains(t) {
				m.Extent.Delete(t)
			}
		}
	}
	return nil
}

// stillDerivable recomputes which of the candidate deleted rows the
// post-update space still produces (multi-support check).
func (m *Maintainer) stillDerivable(candidates *relation.Relation) (*relation.Relation, error) {
	// Recompute the view restricted to the candidate rows: evaluate the
	// full view (extents in the simulator are small) and intersect.
	fresh, err := m.reevaluate()
	if err != nil {
		return nil, err
	}
	return candidates.Intersect(fresh)
}

// reevaluate recomputes the view extent from base data, keeping the output
// columns aligned with the qualified select list (same projection fold
// uses). WHERE clauses are pushed into the leftmost join at which their
// columns are bound, so the recomputation never materializes a raw cross
// product.
func (m *Maintainer) reevaluate() (*relation.Relation, error) {
	pending := make([]relation.Condition, 0, len(m.View.Where))
	for _, w := range m.View.Where {
		pending = append(pending, clauseCondition(w.Clause))
	}
	ready := func(schema *relation.Schema) relation.And {
		var take relation.And
		rest := pending[:0]
		for _, c := range pending {
			bound := true
			for _, a := range c.Attrs() {
				if !schema.Has(a) {
					bound = false
					break
				}
			}
			if bound {
				take = append(take, c)
			} else {
				rest = append(rest, c)
			}
		}
		pending = rest
		return take
	}

	var acc *relation.Relation
	for _, f := range m.View.From {
		base := m.Space.Relation(f.Rel)
		if base == nil {
			return nil, fmt.Errorf("maintain: view references missing relation %q", f.Rel)
		}
		attrs := base.Schema().Attrs()
		for i := range attrs {
			attrs[i].Name = f.Binding() + "." + attrs[i].Name
		}
		q := relation.New(base.Name, relation.NewSchema(attrs...))
		for _, t := range base.Tuples() {
			q.Insert(t) //nolint:errcheck
		}
		var err error
		if local := ready(q.Schema()); len(local) > 0 {
			if q, err = q.Select(local); err != nil {
				return nil, err
			}
		}
		if acc == nil {
			acc = q
			continue
		}
		combined := relation.NewSchema(append(acc.Schema().Attrs(), q.Schema().Attrs()...)...)
		acc, err = relation.Join(acc, q, ready(combined))
		if err != nil {
			return nil, err
		}
	}
	if acc == nil {
		return relation.New("V", relation.NewSchema()), nil
	}
	sel, err := acc.Select(relation.And(pending))
	if err != nil {
		return nil, err
	}
	cols := make([]string, len(m.View.Select))
	for i, s := range m.View.Select {
		cols[i] = s.Attr.Qualified()
	}
	return sel.Project(cols...)
}

func deltaBytes(r *relation.Relation) int {
	n := 0
	for _, t := range r.Tuples() {
		n += t.ByteSize()
	}
	if n == 0 {
		// An empty delta still occupies a message envelope; count the
		// schema width once so byte accounting never goes to zero for a
		// round trip.
		n = r.Schema().TupleSize()
	}
	return n
}

func clauseCondition(c esql.Clause) relation.Condition {
	if c.Right.Attr != "" {
		return relation.AttrAttr(c.Left.Qualified(), c.Op, c.Right.Qualified())
	}
	return relation.AttrConst(c.Left.Qualified(), c.Op, c.Const)
}
