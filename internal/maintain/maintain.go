// Package maintain implements the paper's Algorithm 1: incremental
// maintenance of materialized view extents under base-data updates, with
// measured message/byte/IO metrics that cross-validate against the analytic
// QC-Model cost factors.
//
// Updates flow through three phases, separable so a warehouse with many
// live views applies the base change exactly once and folds the delta into
// every view:
//
//  1. Collapse nets a batch of tuple-level updates into per-relation
//     insert/delete Deltas against the current base state (no-ops and
//     cancelling pairs disappear; the notification metrics are charged
//     here, once per source update).
//  2. ApplyBase lands the deltas on the base relations copy-on-write:
//     every touched relation is replaced by a fresh object, so readers
//     holding the old one (through an epoch-published warehouse Version)
//     never observe mutation.
//  3. Maintainer.ApplyDeltas propagates the deltas through one view's
//     sites (Algorithm 1), batched through the columnar plan operators,
//     and folds the result into a fresh copy-on-write extent using
//     derivation counting.
//
// Maintainer.Apply composes the three for the single-update, single-view
// case the experiments drive.
package maintain

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/esql"
	"repro/internal/relation"
	"repro/internal/space"
)

// ErrUnknownRelation reports a data update addressed to a relation the
// space does not hold.
var ErrUnknownRelation = errors.New("maintain: unknown relation")

// Metrics are the measured counterparts of the analytic cost factors.
type Metrics struct {
	Messages int // messages between warehouse and sources
	Bytes    int // bytes moved in either direction (incl. notification)
	IO       int // simulated disk I/Os at the sources
}

// Add accumulates.
func (m *Metrics) Add(o Metrics) {
	m.Messages += o.Messages
	m.Bytes += o.Bytes
	m.IO += o.IO
}

// UpdateKind distinguishes inserts from deletes.
type UpdateKind uint8

// Update kinds.
const (
	Insert UpdateKind = iota
	Delete
)

// Update is one base-data content change.
type Update struct {
	Kind  UpdateKind
	Rel   string
	Tuple relation.Tuple
}

// Delta is the net effect of a collapsed update batch on one base
// relation: the tuples to insert (absent before the batch) and the tuples
// to delete (present before the batch). The two sets are disjoint.
type Delta struct {
	Rel     string
	Inserts []relation.Tuple
	Deletes []relation.Tuple
}

// Card returns the total number of delta tuples.
func (d Delta) Card() int { return len(d.Inserts) + len(d.Deletes) }

// Collapse nets a batch of updates into per-relation deltas against the
// current base state, in first-touch relation order. Inserting a present
// tuple and deleting an absent one are no-ops; an insert cancels a pending
// delete of the same tuple and vice versa. The returned metrics are the
// update notifications — per the paper the source sends ΔR to the
// warehouse exactly once per update, no matter how many views consume it —
// so every update, including a no-op, charges one message plus its tuple
// bytes here and nowhere else.
func Collapse(sp *space.Space, updates []Update) ([]Delta, Metrics, error) {
	var metrics Metrics
	type pending struct {
		rel      string
		insOrder []string
		ins      map[string]relation.Tuple
		delOrder []string
		del      map[string]relation.Tuple
	}
	byRel := make(map[string]*pending)
	var order []*pending
	for _, u := range updates {
		metrics.Messages++
		metrics.Bytes += u.Tuple.ByteSize()
		base := sp.Relation(u.Rel)
		if base == nil {
			return nil, metrics, fmt.Errorf("%w %q", ErrUnknownRelation, u.Rel)
		}
		if len(u.Tuple) != base.Schema().Len() {
			return nil, metrics, fmt.Errorf("maintain: update tuple arity %d != %s arity %d",
				len(u.Tuple), u.Rel, base.Schema().Len())
		}
		p := byRel[u.Rel]
		if p == nil {
			p = &pending{rel: u.Rel, ins: map[string]relation.Tuple{}, del: map[string]relation.Tuple{}}
			byRel[u.Rel] = p
			order = append(order, p)
		}
		k := u.Tuple.Key()
		_, pendIns := p.ins[k]
		_, pendDel := p.del[k]
		present := (base.Contains(u.Tuple) && !pendDel) || pendIns
		switch u.Kind {
		case Insert:
			if present {
				continue // no-op beyond the notification
			}
			if pendDel {
				delete(p.del, k)
			} else {
				if _, dup := p.ins[k]; !dup {
					p.insOrder = append(p.insOrder, k)
				}
				p.ins[k] = u.Tuple
			}
		case Delete:
			if !present {
				continue
			}
			if pendIns {
				delete(p.ins, k)
			} else {
				if _, dup := p.del[k]; !dup {
					p.delOrder = append(p.delOrder, k)
				}
				p.del[k] = u.Tuple
			}
		}
	}
	var deltas []Delta
	for _, p := range order {
		d := Delta{Rel: p.rel}
		for _, k := range p.insOrder {
			if t, ok := p.ins[k]; ok {
				d.Inserts = append(d.Inserts, t)
			}
		}
		for _, k := range p.delOrder {
			if t, ok := p.del[k]; ok {
				d.Deletes = append(d.Deletes, t)
			}
		}
		if d.Card() > 0 {
			deltas = append(deltas, d)
		}
	}
	return deltas, metrics, nil
}

// ApplyBase lands collapsed deltas on their base relations copy-on-write:
// each touched relation is rebuilt via Relation.WithDelta and swapped into
// the space, leaving the old object untouched for concurrent readers. The
// returned map holds the pre-update relation per touched name — the
// pre-state the per-view delta propagation (ApplyDeltas) telescopes
// against.
func ApplyBase(sp *space.Space, deltas []Delta) (map[string]*relation.Relation, error) {
	pre := make(map[string]*relation.Relation, len(deltas))
	for _, d := range deltas {
		cur := sp.Relation(d.Rel)
		if cur == nil {
			return nil, fmt.Errorf("%w %q", ErrUnknownRelation, d.Rel)
		}
		next, err := cur.WithDelta(d.Inserts, d.Deletes)
		if err != nil {
			return nil, err
		}
		if err := sp.ReplaceRelation(d.Rel, next); err != nil {
			return nil, err
		}
		pre[d.Rel] = cur
	}
	return pre, nil
}

// Maintainer incrementally maintains one materialized view over a space.
type Maintainer struct {
	Space *space.Space
	View  *esql.ViewDef // fully qualified
	// Extent is the materialized view extent, with the view's output
	// column names. ApplyDeltas replaces it with a fresh object per batch
	// (copy-on-write) — it is never mutated in place, so snapshots holding
	// a previous extent stay stable.
	Extent *relation.Relation
	// BlockingFactor is bfr for the I/O simulation (default 10).
	BlockingFactor int

	// counts tracks the derivation count of every extent row (the counting
	// algorithm's bookkeeping), built lazily from the pre-update state on
	// the first ApplyDeltas and maintained incrementally afterwards.
	counts *supportCounts
	// onSite, when set, observes every site visit of a propagation pass in
	// order — a test seam for pinning Algorithm 1's visit order.
	onSite func(source string)
}

// New creates a maintainer; the initial extent must be supplied (usually
// from exec.Evaluate).
func New(sp *space.Space, view *esql.ViewDef, extent *relation.Relation) *Maintainer {
	return &Maintainer{Space: sp, View: view, Extent: extent, BlockingFactor: 10}
}

func (m *Maintainer) bfr() int {
	if m.BlockingFactor > 0 {
		return m.BlockingFactor
	}
	return 10
}

// Apply performs one base update at its source and brings the view extent
// up to date, returning the measured metrics — the single-update
// composition of Collapse, ApplyBase, and ApplyDeltas ("the view
// maintainer brings the view extents up-to-date right after the IS data is
// updated"). ctx is checked before the base update lands; past that point
// the propagation should be allowed to finish — callers owning published
// state pass a post-commit context the way warehouse.ApplyUpdates does,
// while measurement drivers over private spaces (experiments) may pass any
// ctx since a torn cancel only tears their own scratch state.
func (m *Maintainer) Apply(ctx context.Context, u Update) (Metrics, error) {
	deltas, metrics, err := Collapse(m.Space, []Update{u})
	if err != nil || len(deltas) == 0 {
		return metrics, err
	}
	if err := ctx.Err(); err != nil {
		return metrics, err
	}
	pre, err := ApplyBase(m.Space, deltas)
	if err != nil {
		return metrics, err
	}
	pm, err := m.ApplyDeltas(ctx, deltas, pre)
	metrics.Add(pm)
	return metrics, err
}
