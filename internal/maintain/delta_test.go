package maintain

import (
	"context"
	"testing"

	"repro/internal/esql"
	"repro/internal/exec"
	"repro/internal/relation"
	"repro/internal/space"
)

func TestCollapseNetsUpdates(t *testing.T) {
	sp, _ := joinSpace(t)
	deltas, metrics, err := Collapse(sp, []Update{
		{Insert, "R", relation.Tuple{relation.Int(3), relation.Int(30)}},
		{Delete, "R", relation.Tuple{relation.Int(3), relation.Int(30)}}, // cancels the insert
		{Insert, "R", relation.Tuple{relation.Int(1), relation.Int(10)}}, // already present: no-op
		{Delete, "R", relation.Tuple{relation.Int(2), relation.Int(20)}}, // present: real delete
		{Insert, "R", relation.Tuple{relation.Int(4), relation.Int(40)}}, // absent: real insert
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every update notifies once, no-ops and cancelled pairs included.
	if metrics.Messages != 5 {
		t.Errorf("notification messages = %d, want 5", metrics.Messages)
	}
	if len(deltas) != 1 || deltas[0].Rel != "R" {
		t.Fatalf("deltas = %+v, want one delta for R", deltas)
	}
	d := deltas[0]
	if len(d.Inserts) != 1 || d.Inserts[0].Key() != (relation.Tuple{relation.Int(4), relation.Int(40)}).Key() {
		t.Errorf("net inserts = %v", d.Inserts)
	}
	if len(d.Deletes) != 1 || d.Deletes[0].Key() != (relation.Tuple{relation.Int(2), relation.Int(20)}).Key() {
		t.Errorf("net deletes = %v", d.Deletes)
	}
	if d.Card() != 2 {
		t.Errorf("delta card = %d, want 2", d.Card())
	}
	// Collapse inspects state but must not modify it.
	if sp.Relation("R").Card() != 2 {
		t.Errorf("Collapse mutated the base relation: card = %d", sp.Relation("R").Card())
	}
}

func TestApplyBaseCopyOnWrite(t *testing.T) {
	sp, _ := joinSpace(t)
	old := sp.Relation("R")
	deltas, _, err := Collapse(sp, []Update{
		{Insert, "R", relation.Tuple{relation.Int(3), relation.Int(30)}},
		{Delete, "R", relation.Tuple{relation.Int(1), relation.Int(10)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	pre, err := ApplyBase(sp, deltas)
	if err != nil {
		t.Fatal(err)
	}
	if pre["R"] != old {
		t.Error("pre-state map should hold the replaced relation object")
	}
	if sp.Relation("R") == old {
		t.Fatal("ApplyBase mutated the relation in place; want a fresh object")
	}
	if old.Card() != 2 || !old.Contains(relation.Tuple{relation.Int(1), relation.Int(10)}) {
		t.Error("pre-update relation changed under a reader")
	}
	cur := sp.Relation("R")
	if cur.Card() != 2 || !cur.Contains(relation.Tuple{relation.Int(3), relation.Int(30)}) ||
		cur.Contains(relation.Tuple{relation.Int(1), relation.Int(10)}) {
		t.Errorf("post-update relation wrong:\n%s", cur)
	}
}

// TestSiteVisitOrder pins Algorithm 1's visit order through the onSite
// seam: for each delta step the maintainer queries the delta's own site
// first (co-located relations join without a message round trip in the
// paper's model) and then the remaining sites in FROM order.
func TestSiteVisitOrder(t *testing.T) {
	sp := space.New()
	for _, s := range []string{"IS1", "IS2"} {
		if _, err := sp.AddSource(s); err != nil {
			t.Fatal(err)
		}
	}
	r := relation.MustFromRows("R", relation.MustSchema(relation.TypeInt, "A", "B"),
		relation.IntRows([]int64{1, 10})...)
	tt := relation.MustFromRows("T", relation.MustSchema(relation.TypeInt, "A", "D"),
		relation.IntRows([]int64{1, 1000}, []int64{2, 2000})...)
	s := relation.MustFromRows("S", relation.MustSchema(relation.TypeInt, "A", "C"),
		relation.IntRows([]int64{1, 100}, []int64{2, 200})...)
	if err := sp.AddRelation("IS1", r); err != nil {
		t.Fatal(err)
	}
	if err := sp.AddRelation("IS1", tt); err != nil {
		t.Fatal(err)
	}
	if err := sp.AddRelation("IS2", s); err != nil {
		t.Fatal(err)
	}
	v := esql.MustParse("CREATE VIEW V AS SELECT R.B, S.C, T.D FROM R, S, T WHERE R.A = S.A AND R.A = T.A")
	q, err := exec.Qualify(v, sp)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := exec.Evaluate(context.Background(), q, sp)
	if err != nil {
		t.Fatal(err)
	}
	m := New(sp, q, ext)
	var visits []string
	m.onSite = func(source string) { visits = append(visits, source) }
	// ΔR originates at IS1, which also hosts T; S sits at IS2. Although S
	// precedes T in the FROM clause, the co-located T is joined first.
	if _, err := m.Apply(context.Background(), Update{Kind: Insert, Rel: "R", Tuple: relation.Tuple{relation.Int(2), relation.Int(20)}}); err != nil {
		t.Fatal(err)
	}
	if len(visits) != 2 || visits[0] != "IS1" || visits[1] != "IS2" {
		t.Errorf("site visits = %v, want [IS1 IS2] (co-located first, then FROM order)", visits)
	}
	if m.Extent.Card() != 2 {
		t.Errorf("extent = %d, want 2", m.Extent.Card())
	}
	recompute(t, sp, m)
}

// TestSeedBoundClauseSkipsSites pins the seed-clause fix: a WHERE clause
// fully bound inside the delta is applied once at the seed, and a delta it
// empties never visits any site — the only message is the notification.
func TestSeedBoundClauseSkipsSites(t *testing.T) {
	sp := space.New()
	for _, s := range []string{"IS1", "IS2"} {
		if _, err := sp.AddSource(s); err != nil {
			t.Fatal(err)
		}
	}
	r := relation.MustFromRows("R", relation.MustSchema(relation.TypeInt, "A", "B"),
		relation.IntRows([]int64{1, 200})...)
	s := relation.MustFromRows("S", relation.MustSchema(relation.TypeInt, "A", "C"),
		relation.IntRows([]int64{1, 100}, []int64{7, 700})...)
	if err := sp.AddRelation("IS1", r); err != nil {
		t.Fatal(err)
	}
	if err := sp.AddRelation("IS2", s); err != nil {
		t.Fatal(err)
	}
	v := esql.MustParse("CREATE VIEW V AS SELECT R.B, S.C FROM R, S WHERE R.A = S.A AND R.B > 100")
	q, err := exec.Qualify(v, sp)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := exec.Evaluate(context.Background(), q, sp)
	if err != nil {
		t.Fatal(err)
	}
	m := New(sp, q, ext)
	var visits []string
	m.onSite = func(source string) { visits = append(visits, source) }
	// B = 5 fails R.B > 100, a clause fully bound by ΔR: the propagation
	// must stop at the seed.
	metrics, err := m.Apply(context.Background(), Update{Kind: Insert, Rel: "R", Tuple: relation.Tuple{relation.Int(7), relation.Int(5)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(visits) != 0 {
		t.Errorf("seed-filtered delta visited sites %v; want none", visits)
	}
	if metrics.Messages != 1 {
		t.Errorf("messages = %d, want 1 (notification only)", metrics.Messages)
	}
	recompute(t, sp, m)
	// A qualifying tuple does propagate.
	metrics, err = m.Apply(context.Background(), Update{Kind: Insert, Rel: "R", Tuple: relation.Tuple{relation.Int(7), relation.Int(300)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(visits) != 1 || visits[0] != "IS2" {
		t.Errorf("qualifying delta visits = %v, want [IS2]", visits)
	}
	if metrics.Messages != 3 {
		t.Errorf("messages = %d, want 3", metrics.Messages)
	}
	recompute(t, sp, m)
}

// TestBatchSharedBase drives the warehouse decomposition by hand: one
// Collapse, one ApplyBase, then per-view ApplyDeltas against the shared
// pre-state — both views must match a full recompute afterwards.
func TestBatchSharedBase(t *testing.T) {
	sp, m1 := joinSpace(t)
	v2 := esql.MustParse("CREATE VIEW W AS SELECT R.B FROM R")
	q2, err := exec.Qualify(v2, sp)
	if err != nil {
		t.Fatal(err)
	}
	ext2, err := exec.Evaluate(context.Background(), q2, sp)
	if err != nil {
		t.Fatal(err)
	}
	m2 := New(sp, q2, ext2)

	deltas, _, err := Collapse(sp, []Update{
		{Insert, "R", relation.Tuple{relation.Int(3), relation.Int(30)}},
		{Insert, "S", relation.Tuple{relation.Int(2), relation.Int(200)}},
		{Delete, "R", relation.Tuple{relation.Int(1), relation.Int(10)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	pre, err := ApplyBase(sp, deltas)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []*Maintainer{m1, m2} {
		if _, err := m.ApplyDeltas(context.Background(), deltas, pre); err != nil {
			t.Fatal(err)
		}
		recompute(t, sp, m)
	}
	if m2.Extent.Card() != 2 { // B values {20, 30}
		t.Errorf("single-relation view card = %d, want 2", m2.Extent.Card())
	}
}
