package maintain

import (
	"context"
	"fmt"
	"math"

	"repro/internal/esql"
	"repro/internal/plan"
	"repro/internal/relation"
)

// This file is the batched delta-propagation engine: Algorithm 1 run over
// columnar delta batches instead of tuple-at-a-time joins. One collapsed
// batch yields one propagation step per (delta, FROM binding) pair; the
// steps telescope — for step k, bindings whose step already ran join
// against post-update state, later steps' bindings against pre-update
// state, untouched bindings against current state — which makes the summed
// signed deltas exactly the view difference, self-joins included. Insert
// and delete bags ride through the same hops; at the fold each output row's
// derivation count moves by +1 per insert witness and −1 per delete
// witness (the counting algorithm), so multi-supported rows survive
// partial deletions without any recomputation.

// supportCounts is the counting algorithm's bookkeeping: each distinct
// extent row with its number of derivations. Rows are kept in a swap-delete
// slice so the extent can be rebuilt by a single copy.
type supportCounts struct {
	rows []relation.Tuple
	idx  map[string]int
	cnt  []int
}

func newSupportCounts() *supportCounts {
	return &supportCounts{idx: map[string]int{}}
}

// add moves a row's derivation count by d, appending rows that appear
// (count rises above zero) and swap-deleting rows whose support vanishes.
func (sc *supportCounts) add(t relation.Tuple, d int) {
	k := t.Key()
	i, ok := sc.idx[k]
	if !ok {
		if d <= 0 {
			return
		}
		sc.idx[k] = len(sc.rows)
		sc.rows = append(sc.rows, t)
		sc.cnt = append(sc.cnt, d)
		return
	}
	sc.cnt[i] += d
	if sc.cnt[i] > 0 {
		return
	}
	last := len(sc.rows) - 1
	if i != last {
		moved := sc.rows[last]
		sc.rows[i] = moved
		sc.cnt[i] = sc.cnt[last]
		sc.idx[moved.Key()] = i
	}
	sc.rows = sc.rows[:last]
	sc.cnt = sc.cnt[:last]
	delete(sc.idx, k)
}

// ApplyDeltas runs Algorithm 1 for one collapsed batch: each delta is
// propagated through the view's sites as a columnar batch, joined with the
// local relations under the WHERE clauses that become bound along the way,
// and folded into a fresh copy-on-write extent by derivation counting. pre
// maps every delta relation to its pre-batch state (from ApplyBase); the
// per-step pre/post choice telescopes the deltas into the exact view
// difference. The previous Extent object is never mutated — on any change
// a new extent replaces it, so snapshots stay stable. Metrics cover the
// site round trips and source I/O of this view's propagation only; the
// one-time update notification is charged by Collapse.
func (m *Maintainer) ApplyDeltas(ctx context.Context, deltas []Delta, pre map[string]*relation.Relation) (Metrics, error) {
	var metrics Metrics

	// One step per (delta, FROM binding referencing it), in collapse ×
	// FROM order. A view not referencing any updated relation has nothing
	// to do.
	type step struct {
		d Delta
		f esql.FromItem
	}
	var steps []step
	stepIdx := map[string]int{}
	for _, d := range deltas {
		for _, f := range m.View.From {
			if f.Rel == d.Rel {
				stepIdx[f.Binding()] = len(steps)
				steps = append(steps, step{d: d, f: f})
			}
		}
	}
	if len(steps) == 0 {
		return metrics, nil
	}

	// state resolves the relation a binding joins against during step k:
	// post-update for bindings whose step already ran, pre-update for
	// bindings still pending, current for untouched relations.
	state := func(f esql.FromItem, k int) *relation.Relation {
		if j, isStep := stepIdx[f.Binding()]; isStep && j > k {
			if p := pre[f.Rel]; p != nil {
				return p
			}
		}
		return m.Space.Relation(f.Rel)
	}

	// The counting fold needs per-row derivation counts; build them once
	// from the pre-batch state (a bag-semantics evaluation through the
	// same columnar operators) and maintain them incrementally afterwards.
	if m.counts == nil {
		sc, err := m.evalCounts(ctx, func(f esql.FromItem) *relation.Relation {
			if p := pre[f.Rel]; p != nil {
				return p
			}
			return m.Space.Relation(f.Rel)
		})
		if err != nil {
			return metrics, err
		}
		m.counts = sc
	}

	changed := false
	for k, st := range steps {
		ch, err := m.propagateStep(ctx, st.d, st.f, k, state, &metrics)
		if err != nil {
			return metrics, err
		}
		changed = changed || ch
	}
	if changed {
		rows := make([]relation.Tuple, len(m.counts.rows))
		copy(rows, m.counts.rows)
		m.Extent = relation.FromDistinctRows(m.Extent.Name, m.Extent.Schema(), rows)
	}
	return metrics, nil
}

// hop is the delta flowing between sites: the insert and delete bags over
// one accumulated schema. Multiplicity in a bag is derivation multiplicity.
type hop struct {
	schema *relation.Schema
	ins    *relation.ColumnBatch
	del    *relation.ColumnBatch
}

func (h *hop) card() int { return h.ins.Rows() + h.del.Rows() }

// bytes is the shipped size of the hop: actual tuple bytes, or one schema
// tuple width when both bags are empty (a message envelope is never free).
func (h *hop) bytes() int {
	n := 0
	for _, t := range h.ins.Tuples() {
		n += t.ByteSize()
	}
	for _, t := range h.del.Tuples() {
		n += t.ByteSize()
	}
	if n == 0 {
		n = h.schema.TupleSize()
	}
	return n
}

// propagateStep runs one step of the batch: seed the delta at its binding,
// visit the sites (the updated relation's own IS first — its co-located
// relations join without any message — then the remaining ISs in FROM
// order), and fold the surviving witnesses into the derivation counts.
// It reports whether the counts changed.
func (m *Maintainer) propagateStep(ctx context.Context, d Delta, seedFrom esql.FromItem, k int, state func(esql.FromItem, int) *relation.Relation, metrics *Metrics) (bool, error) {
	binding := seedFrom.Binding()
	base := m.Space.Relation(d.Rel)
	if base == nil {
		return false, fmt.Errorf("%w %q", ErrUnknownRelation, d.Rel)
	}
	seedSchema := base.Schema().Qualify(d.Rel, binding)
	h := &hop{
		schema: seedSchema,
		ins:    relation.NewColumnBatch(d.Inserts, seedSchema.Len()),
		del:    relation.NewColumnBatch(d.Deletes, seedSchema.Len()),
	}

	// Clauses fully bound inside the seed delta are applied exactly once,
	// here; later hops skip them (they can never re-filter the delta).
	applied := make([]bool, len(m.View.Where))
	var seedCond relation.And
	for i, w := range m.View.Where {
		cl := clauseOf(w.Clause)
		if allIn(seedSchema, cl.Attrs()) {
			seedCond = append(seedCond, cl)
			applied[i] = true
		}
	}
	if err := h.filter(ctx, seedCond); err != nil {
		return false, err
	}
	if h.card() == 0 {
		// Nothing survives the local conditions; the update cannot affect
		// the view and no site needs to hear about it.
		return false, nil
	}

	// Site visit order: the updating IS first (its other relations), then
	// the remaining ISs in FROM order.
	type siteRels struct {
		source string
		rels   []esql.FromItem
	}
	bySource := map[string]*siteRels{}
	var order []*siteRels
	addRel := func(f esql.FromItem) {
		src := m.Space.Home(f.Rel)
		sr, ok := bySource[src]
		if !ok {
			sr = &siteRels{source: src}
			bySource[src] = sr
			order = append(order, sr)
		}
		sr.rels = append(sr.rels, f)
	}
	updatedHome := m.Space.Home(d.Rel)
	for _, f := range m.View.From {
		if f.Binding() != binding && m.Space.Home(f.Rel) == updatedHome {
			addRel(f)
		}
	}
	for _, f := range m.View.From {
		if f.Binding() != binding && m.Space.Home(f.Rel) != updatedHome {
			addRel(f)
		}
	}

	for _, site := range order {
		if len(site.rels) == 0 {
			continue
		}
		if m.onSite != nil {
			m.onSite(site.source)
		}
		// Send query + delta to the site.
		metrics.Messages++
		metrics.Bytes += h.bytes()
		for _, f := range site.rels {
			local := state(f, k)
			if local == nil {
				return false, fmt.Errorf("maintain: view references missing relation %q", f.Rel)
			}
			// I/O at the source: min(scan, index retrieval per delta tuple).
			metrics.IO += m.joinIO(h.card(), local.Card())
			if err := m.joinHop(ctx, h, local, f.Binding(), applied); err != nil {
				return false, err
			}
		}
		// Result returns to the warehouse.
		metrics.Messages++
		metrics.Bytes += h.bytes()
	}

	return m.fold(h)
}

// filter narrows both bags by a conjunction, through the columnar filter
// kernels.
func (h *hop) filter(ctx context.Context, cond relation.And) error {
	if len(cond) == 0 {
		return nil
	}
	apply := func(b *relation.ColumnBatch) (*relation.ColumnBatch, error) {
		if b.Rows() == 0 {
			return b, nil
		}
		leaf, err := plan.NewBatchScan(h.schema, b)
		if err != nil {
			return nil, err
		}
		f, err := plan.NewFilter(leaf, cond, b.Rows())
		if err != nil {
			return nil, err
		}
		return plan.ExecuteBag(ctx, f)
	}
	var err error
	if h.ins, err = apply(h.ins); err != nil {
		return err
	}
	h.del, err = apply(h.del)
	return err
}

// joinHop joins both bags with one local relation under the view's WHERE
// clauses that become newly bound at this hop: equi-clauses bridging delta
// and local become hash keys, clauses local to the scanned relation are
// pushed below the join, the rest apply as a residual. Clauses already
// applied (fully bound inside the delta at an earlier point) are skipped.
func (m *Maintainer) joinHop(ctx context.Context, h *hop, local *relation.Relation, binding string, applied []bool) error {
	scan, err := plan.NewScan(local, binding, local.Card())
	if err != nil {
		return err
	}
	scanSchema := scan.Schema()
	var keys []relation.Clause
	var scanCond, residual relation.And
	for i, w := range m.View.Where {
		if applied[i] {
			continue
		}
		cl := clauseOf(w.Clause)
		switch {
		case allIn(scanSchema, cl.Attrs()):
			scanCond = append(scanCond, cl)
		case !allIn2(h.schema, scanSchema, cl.Attrs()):
			continue // still unbound; a later hop applies it
		case cl.IsEquiJoin() && h.schema.Has(cl.Left) && scanSchema.Has(cl.Right):
			keys = append(keys, cl)
		case cl.IsEquiJoin() && scanSchema.Has(cl.Left) && h.schema.Has(cl.Right):
			keys = append(keys, relation.AttrAttr(cl.Right, cl.Op, cl.Left))
		default:
			residual = append(residual, cl)
		}
		applied[i] = true
	}
	var right plan.Node = scan
	if len(scanCond) > 0 {
		if right, err = plan.NewFilter(scan, scanCond, local.Card()); err != nil {
			return err
		}
	}

	// Physical choice per bag, mirroring joinIO's optimizer assumption
	// (Appendix A): when per-delta-tuple index retrievals are cheaper than
	// a full scan, the join probes the relation's memoized key index and
	// never streams the local side; otherwise it hash-joins against the
	// scan. The index persists on the relation object across batches, so
	// only relations actually updated ever pay a rebuild.
	scanIO := (local.Card() + m.bfr() - 1) / m.bfr()
	if scanIO < 1 {
		scanIO = 1
	}
	var lookupResidual relation.And
	if len(scanCond) > 0 || len(residual) > 0 {
		lookupResidual = append(append(relation.And{}, scanCond...), residual...)
	}

	combined := relation.NewSchema(append(h.schema.Attrs(), scanSchema.Attrs()...)...)
	join := func(b *relation.ColumnBatch) (*relation.ColumnBatch, error) {
		if b.Rows() == 0 {
			return relation.NewColumnBatch(nil, combined.Len()), nil
		}
		leaf, err := plan.NewBatchScan(h.schema, b)
		if err != nil {
			return nil, err
		}
		var node plan.Node
		switch {
		case len(keys) > 0 && b.Rows() < scanIO:
			node, err = plan.NewIndexLookup(leaf, scan, keys, lookupResidual, b.Rows())
		case len(keys) > 0:
			node, err = plan.NewHashJoin(leaf, right, keys, residual, b.Rows())
		default:
			node, err = plan.NewNestedLoop(leaf, right, residual, b.Rows())
		}
		if err != nil {
			return nil, err
		}
		return plan.ExecuteBag(ctx, node)
	}
	ins, err := join(h.ins)
	if err != nil {
		return err
	}
	del, err := join(h.del)
	if err != nil {
		return err
	}
	h.schema, h.ins, h.del = combined, ins, del
	return nil
}

// joinIO charges the cheaper of a full scan and per-delta-tuple index
// retrievals, mirroring Appendix A's optimizer assumption.
func (m *Maintainer) joinIO(deltaCard, localCard int) int {
	scan := int(math.Ceil(float64(localCard) / float64(m.bfr())))
	if scan < 1 {
		scan = 1
	}
	index := deltaCard
	if index == 0 {
		index = 1
	}
	if scan < index {
		return scan
	}
	return index
}

// fold projects both bags onto the view's output columns and moves the
// derivation counts: +1 per insert witness, −1 per delete witness. It
// reports whether any count moved.
func (m *Maintainer) fold(h *hop) (bool, error) {
	idx := make([]int, len(m.View.Select))
	for i, s := range m.View.Select {
		idx[i] = h.schema.IndexOf(s.Attr.Qualified())
		if idx[i] < 0 {
			return false, fmt.Errorf("maintain: output column %s not bound by propagation", s.Attr.Qualified())
		}
	}
	project := func(t relation.Tuple) relation.Tuple {
		pt := make(relation.Tuple, len(idx))
		for i, j := range idx {
			pt[i] = t[j]
		}
		return pt
	}
	changed := h.ins.Rows() > 0 || h.del.Rows() > 0
	for _, t := range h.ins.Tuples() {
		m.counts.add(project(t), 1)
	}
	for _, t := range h.del.Tuples() {
		m.counts.add(project(t), -1)
	}
	return changed, nil
}

// evalCounts computes the derivation count of every view row by a full
// bag-semantics evaluation over the given base state: a left-deep plan in
// FROM order with every WHERE clause applied at its earliest bound point,
// projected (without duplicate elimination) onto the output columns, then
// counted.
func (m *Maintainer) evalCounts(ctx context.Context, state func(esql.FromItem) *relation.Relation) (*supportCounts, error) {
	sc := newSupportCounts()
	if len(m.View.From) == 0 {
		return sc, nil
	}
	applied := make([]bool, len(m.View.Where))
	var acc plan.Node
	for _, f := range m.View.From {
		base := state(f)
		if base == nil {
			return nil, fmt.Errorf("maintain: view references missing relation %q", f.Rel)
		}
		scan, err := plan.NewScan(base, f.Binding(), base.Card())
		if err != nil {
			return nil, err
		}
		scanSchema := scan.Schema()
		var scanCond relation.And
		var node plan.Node = scan
		if acc == nil {
			for i, w := range m.View.Where {
				if !applied[i] && allIn(scanSchema, clauseOf(w.Clause).Attrs()) {
					scanCond = append(scanCond, clauseOf(w.Clause))
					applied[i] = true
				}
			}
			if len(scanCond) > 0 {
				if node, err = plan.NewFilter(scan, scanCond, base.Card()); err != nil {
					return nil, err
				}
			}
			acc = node
			continue
		}
		accSchema := acc.Schema()
		var keys []relation.Clause
		var residual relation.And
		for i, w := range m.View.Where {
			if applied[i] {
				continue
			}
			cl := clauseOf(w.Clause)
			switch {
			case allIn(scanSchema, cl.Attrs()):
				scanCond = append(scanCond, cl)
			case !allIn2(accSchema, scanSchema, cl.Attrs()):
				continue
			case cl.IsEquiJoin() && accSchema.Has(cl.Left) && scanSchema.Has(cl.Right):
				keys = append(keys, cl)
			case cl.IsEquiJoin() && scanSchema.Has(cl.Left) && accSchema.Has(cl.Right):
				keys = append(keys, relation.AttrAttr(cl.Right, cl.Op, cl.Left))
			default:
				residual = append(residual, cl)
			}
			applied[i] = true
		}
		if len(scanCond) > 0 {
			if node, err = plan.NewFilter(scan, scanCond, base.Card()); err != nil {
				return nil, err
			}
		}
		if len(keys) > 0 {
			acc, err = plan.NewHashJoin(acc, node, keys, residual, acc.EstRows())
		} else {
			acc, err = plan.NewNestedLoop(acc, node, residual, acc.EstRows())
		}
		if err != nil {
			return nil, err
		}
	}
	// Defensive: any clause not yet applied (it references attributes no
	// FROM binding provides) fails at bind time with a clear error.
	var rest relation.And
	for i, w := range m.View.Where {
		if !applied[i] {
			rest = append(rest, clauseOf(w.Clause))
		}
	}
	if len(rest) > 0 {
		var err error
		if acc, err = plan.NewFilter(acc, rest, acc.EstRows()); err != nil {
			return nil, err
		}
	}
	idx := make([]int, len(m.View.Select))
	for i, s := range m.View.Select {
		idx[i] = acc.Schema().IndexOf(s.Attr.Qualified())
		if idx[i] < 0 {
			return nil, fmt.Errorf("maintain: output column %s not bound by FROM", s.Attr.Qualified())
		}
	}
	proj, err := plan.NewProject(acc, m.Extent.Schema(), idx, acc.EstRows())
	if err != nil {
		return nil, err
	}
	batch, err := plan.ExecuteBag(ctx, proj)
	if err != nil {
		return nil, err
	}
	for _, t := range batch.Tuples() {
		sc.add(t, 1)
	}
	return sc, nil
}

// allIn reports whether every attribute is bound by the schema.
func allIn(s *relation.Schema, attrs []string) bool {
	for _, a := range attrs {
		if !s.Has(a) {
			return false
		}
	}
	return true
}

// allIn2 reports whether every attribute is bound by one of two schemas.
func allIn2(a, b *relation.Schema, attrs []string) bool {
	for _, at := range attrs {
		if !a.Has(at) && !b.Has(at) {
			return false
		}
	}
	return true
}

// clauseOf lowers an E-SQL clause over qualified attribute references to a
// relation-layer clause.
func clauseOf(c esql.Clause) relation.Clause {
	if c.Right.Attr != "" {
		return relation.AttrAttr(c.Left.Qualified(), c.Op, c.Right.Qualified())
	}
	return relation.AttrConst(c.Left.Qualified(), c.Op, c.Const)
}
