package maintain

import (
	"context"
	"testing"

	"repro/internal/esql"
	"repro/internal/exec"
	"repro/internal/relation"
	"repro/internal/space"
)

// joinSpace builds IS1: R(A,B), IS2: S(A,C) and the join view
// V = SELECT R.B, S.C FROM R, S WHERE R.A = S.A.
func joinSpace(t *testing.T) (*space.Space, *Maintainer) {
	t.Helper()
	sp := space.New()
	for _, s := range []string{"IS1", "IS2"} {
		if _, err := sp.AddSource(s); err != nil {
			t.Fatal(err)
		}
	}
	r := relation.MustFromRows("R", relation.MustSchema(relation.TypeInt, "A", "B"),
		relation.IntRows([]int64{1, 10}, []int64{2, 20})...)
	s := relation.MustFromRows("S", relation.MustSchema(relation.TypeInt, "A", "C"),
		relation.IntRows([]int64{1, 100}, []int64{3, 300})...)
	if err := sp.AddRelation("IS1", r); err != nil {
		t.Fatal(err)
	}
	if err := sp.AddRelation("IS2", s); err != nil {
		t.Fatal(err)
	}
	v := esql.MustParse("CREATE VIEW V AS SELECT R.B, S.C FROM R, S WHERE R.A = S.A")
	q, err := exec.Qualify(v, sp)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := exec.Evaluate(context.Background(), q, sp)
	if err != nil {
		t.Fatal(err)
	}
	return sp, New(sp, q, ext)
}

// recompute reruns the executor and compares with the incrementally
// maintained extent.
func recompute(t *testing.T, sp *space.Space, m *Maintainer) {
	t.Helper()
	fresh, err := exec.Evaluate(context.Background(), m.View, sp)
	if err != nil {
		t.Fatal(err)
	}
	if !fresh.Equal(m.Extent) {
		t.Fatalf("incremental extent diverged:\nmaintained:\n%s\nrecomputed:\n%s", m.Extent, fresh)
	}
}

func TestInsertPropagates(t *testing.T) {
	sp, m := joinSpace(t)
	if m.Extent.Card() != 1 {
		t.Fatalf("initial extent = %d", m.Extent.Card())
	}
	// Insert R(3, 30): joins S(3, 300) → view gains (30, 300).
	metrics, err := m.Apply(context.Background(), Update{Kind: Insert, Rel: "R", Tuple: relation.Tuple{relation.Int(3), relation.Int(30)}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Extent.Card() != 2 {
		t.Errorf("extent after insert = %d, want 2", m.Extent.Card())
	}
	recompute(t, sp, m)
	// Messages: notification + (query to IS2 + result). IS1 holds no other
	// view relation, so no round trip there.
	if metrics.Messages != 3 {
		t.Errorf("messages = %d, want 3", metrics.Messages)
	}
	if metrics.Bytes == 0 || metrics.IO == 0 {
		t.Errorf("metrics not collected: %+v", metrics)
	}
}

func TestInsertNonJoiningTuple(t *testing.T) {
	sp, m := joinSpace(t)
	_, err := m.Apply(context.Background(), Update{Kind: Insert, Rel: "R", Tuple: relation.Tuple{relation.Int(99), relation.Int(0)}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Extent.Card() != 1 {
		t.Errorf("non-joining insert changed the view: %d", m.Extent.Card())
	}
	recompute(t, sp, m)
}

func TestDeletePropagates(t *testing.T) {
	sp, m := joinSpace(t)
	_, err := m.Apply(context.Background(), Update{Kind: Delete, Rel: "S", Tuple: relation.Tuple{relation.Int(1), relation.Int(100)}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Extent.Card() != 0 {
		t.Errorf("extent after delete = %d, want 0", m.Extent.Card())
	}
	recompute(t, sp, m)
}

func TestNoopUpdates(t *testing.T) {
	sp, m := joinSpace(t)
	// Inserting an existing tuple and deleting a missing tuple are no-ops
	// beyond the notification.
	metrics, err := m.Apply(context.Background(), Update{Kind: Insert, Rel: "R", Tuple: relation.Tuple{relation.Int(1), relation.Int(10)}})
	if err != nil {
		t.Fatal(err)
	}
	if metrics.Messages != 1 {
		t.Errorf("no-op insert messages = %d, want 1", metrics.Messages)
	}
	metrics, err = m.Apply(context.Background(), Update{Kind: Delete, Rel: "S", Tuple: relation.Tuple{relation.Int(9), relation.Int(9)}})
	if err != nil {
		t.Fatal(err)
	}
	if metrics.Messages != 1 {
		t.Errorf("no-op delete messages = %d, want 1", metrics.Messages)
	}
	recompute(t, sp, m)
}

func TestUpdateToUnreferencedRelation(t *testing.T) {
	sp, m := joinSpace(t)
	extra := relation.New("X", relation.MustSchema(relation.TypeInt, "K"))
	if err := sp.AddRelation("IS1", extra); err != nil {
		t.Fatal(err)
	}
	_, err := m.Apply(context.Background(), Update{Kind: Insert, Rel: "X", Tuple: relation.Tuple{relation.Int(1)}})
	if err != nil {
		t.Fatal(err)
	}
	if sp.Relation("X").Card() != 1 {
		t.Error("base update not applied")
	}
	recompute(t, sp, m)
}

func TestUnknownRelationErrors(t *testing.T) {
	_, m := joinSpace(t)
	if _, err := m.Apply(context.Background(), Update{Kind: Insert, Rel: "Nope", Tuple: relation.Tuple{relation.Int(1)}}); err == nil {
		t.Error("unknown relation should error")
	}
}

// TestUpdateStreamConvergence drives a deterministic stream of inserts and
// deletes and checks the incrementally maintained extent equals a fresh
// recomputation after every step.
func TestUpdateStreamConvergence(t *testing.T) {
	sp, m := joinSpace(t)
	stream := []Update{
		{Insert, "R", relation.Tuple{relation.Int(3), relation.Int(30)}},
		{Insert, "S", relation.Tuple{relation.Int(2), relation.Int(200)}},
		{Insert, "S", relation.Tuple{relation.Int(2), relation.Int(201)}},
		{Delete, "R", relation.Tuple{relation.Int(1), relation.Int(10)}},
		{Insert, "R", relation.Tuple{relation.Int(1), relation.Int(11)}},
		{Delete, "S", relation.Tuple{relation.Int(3), relation.Int(300)}},
		{Delete, "R", relation.Tuple{relation.Int(3), relation.Int(30)}},
	}
	for i, u := range stream {
		if _, err := m.Apply(context.Background(), u); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		fresh, err := exec.Evaluate(context.Background(), m.View, sp)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if !fresh.Equal(m.Extent) {
			t.Fatalf("step %d: diverged\nmaintained:\n%s\nrecomputed:\n%s", i, m.Extent, fresh)
		}
	}
}

// TestLocalConditionFiltersDelta checks that a constant condition on the
// updated relation prunes non-qualifying updates before any site visit.
func TestLocalConditionFiltersDelta(t *testing.T) {
	sp := space.New()
	sp.AddSource("IS1") //nolint:errcheck
	r := relation.MustFromRows("R", relation.MustSchema(relation.TypeInt, "A", "B"),
		relation.IntRows([]int64{1, 10})...)
	sp.AddRelation("IS1", r) //nolint:errcheck
	v := esql.MustParse("CREATE VIEW V AS SELECT R.A FROM R WHERE R.B > 100")
	q, err := exec.Qualify(v, sp)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := exec.Evaluate(context.Background(), q, sp)
	if err != nil {
		t.Fatal(err)
	}
	m := New(sp, q, ext)
	if _, err := m.Apply(context.Background(), Update{Kind: Insert, Rel: "R", Tuple: relation.Tuple{relation.Int(2), relation.Int(50)}}); err != nil {
		t.Fatal(err)
	}
	if m.Extent.Card() != 0 {
		t.Errorf("filtered tuple leaked into the view: %d", m.Extent.Card())
	}
	if _, err := m.Apply(context.Background(), Update{Kind: Insert, Rel: "R", Tuple: relation.Tuple{relation.Int(3), relation.Int(500)}}); err != nil {
		t.Fatal(err)
	}
	if m.Extent.Card() != 1 {
		t.Errorf("qualifying tuple missing: %d", m.Extent.Card())
	}
	recompute(t, sp, m)
}

// TestMeasuredMessagesMatchAnalyticModel compares the simulator's message
// count for a two-site join view against the analytic CF_M (with the
// notification counted): m = 2, n1 = 0 → 2(m−1) + 1 = 3.
func TestMeasuredMessagesMatchAnalyticModel(t *testing.T) {
	_, m := joinSpace(t)
	metrics, err := m.Apply(context.Background(), Update{Kind: Insert, Rel: "R", Tuple: relation.Tuple{relation.Int(3), relation.Int(30)}})
	if err != nil {
		t.Fatal(err)
	}
	if metrics.Messages != 3 {
		t.Errorf("measured messages = %d, analytic CF_M = 3", metrics.Messages)
	}
}

// TestMultiSupportDelete checks the counting-style correctness case: a view
// row derivable from two base combinations must survive the deletion of one
// of them.
func TestMultiSupportDelete(t *testing.T) {
	sp, m := joinSpace(t)
	// R(1,10) ⋈ S(1,100) yields (10,100). Add R(5,10) and S(5,100): the
	// same view row (10,100) gains a second derivation.
	for _, u := range []Update{
		{Insert, "R", relation.Tuple{relation.Int(5), relation.Int(10)}},
		{Insert, "S", relation.Tuple{relation.Int(5), relation.Int(100)}},
	} {
		if _, err := m.Apply(context.Background(), u); err != nil {
			t.Fatal(err)
		}
	}
	if !m.Extent.Contains(relation.Tuple{relation.Int(10), relation.Int(100)}) {
		t.Fatal("setup failed: view row missing")
	}
	// Delete one derivation; the row must survive.
	if _, err := m.Apply(context.Background(), Update{Kind: Delete, Rel: "R", Tuple: relation.Tuple{relation.Int(1), relation.Int(10)}}); err != nil {
		t.Fatal(err)
	}
	if !m.Extent.Contains(relation.Tuple{relation.Int(10), relation.Int(100)}) {
		t.Error("multi-supported row wrongly removed")
	}
	recompute(t, sp, m)
	// Delete the second derivation; now the row must go.
	if _, err := m.Apply(context.Background(), Update{Kind: Delete, Rel: "R", Tuple: relation.Tuple{relation.Int(5), relation.Int(10)}}); err != nil {
		t.Fatal(err)
	}
	if m.Extent.Contains(relation.Tuple{relation.Int(10), relation.Int(100)}) {
		t.Error("unsupported row survived")
	}
	recompute(t, sp, m)
}

func TestMetricsAdd(t *testing.T) {
	a := Metrics{Messages: 1, Bytes: 2, IO: 3}
	a.Add(Metrics{Messages: 10, Bytes: 20, IO: 30})
	if a.Messages != 11 || a.Bytes != 22 || a.IO != 33 {
		t.Errorf("Add = %+v", a)
	}
}
