package esql

import (
	"strings"
	"testing"

	"repro/internal/relation"
)

const asiaCustomer = `
CREATE VIEW AsiaCustomer (VE = ~) AS
SELECT Name, Address, Phone (AD = true, AR = true)
FROM Customer C (RR = true), FlightRes F
WHERE (C.Name = F.PName) AND (F.Dest = 'Asia') (CD = true)
`

func TestParseAsiaCustomer(t *testing.T) {
	v, err := Parse(asiaCustomer)
	if err != nil {
		t.Fatal(err)
	}
	if v.Name != "AsiaCustomer" {
		t.Errorf("name = %q", v.Name)
	}
	if v.Extent != ExtentAny {
		t.Errorf("extent = %v", v.Extent)
	}
	if len(v.Select) != 3 {
		t.Fatalf("select items = %d", len(v.Select))
	}
	if v.Select[0].Dispensable || v.Select[0].Replaceable {
		t.Error("Name should default to (false,false)")
	}
	if !v.Select[2].Dispensable || !v.Select[2].Replaceable {
		t.Error("Phone should be (AD,AR)=(true,true)")
	}
	if len(v.From) != 2 {
		t.Fatalf("from items = %d", len(v.From))
	}
	if v.From[0].Rel != "Customer" || v.From[0].Alias != "C" || !v.From[0].Replaceable {
		t.Errorf("from[0] = %+v", v.From[0])
	}
	if len(v.Where) != 2 {
		t.Fatalf("where items = %d", len(v.Where))
	}
	if !v.Where[0].Clause.IsJoin() {
		t.Error("first clause should be a join")
	}
	if !v.Where[1].Dispensable || v.Where[1].Replaceable {
		t.Error("second clause should be (CD,CR)=(true,false)")
	}
	if v.Where[1].Clause.Const.AsString() != "Asia" {
		t.Errorf("const = %v", v.Where[1].Clause.Const)
	}
}

func TestParseExtentParams(t *testing.T) {
	for src, want := range map[string]ExtentParam{
		"CREATE VIEW V (VE = ~) AS SELECT R.A FROM R":        ExtentAny,
		"CREATE VIEW V (VE = ==) AS SELECT R.A FROM R":       ExtentEqual,
		"CREATE VIEW V (VE = >=) AS SELECT R.A FROM R":       ExtentSuperset,
		"CREATE VIEW V (VE = <=) AS SELECT R.A FROM R":       ExtentSubset,
		"CREATE VIEW V (VE = subset) AS SELECT R.A FROM R":   ExtentSubset,
		"CREATE VIEW V (VE = superset) AS SELECT R.A FROM R": ExtentSuperset,
		"CREATE VIEW V AS SELECT R.A FROM R":                 ExtentAny,
	} {
		v, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if v.Extent != want {
			t.Errorf("%s: extent = %v, want %v", src, v.Extent, want)
		}
	}
}

func TestParseNumericConstants(t *testing.T) {
	v, err := Parse("CREATE VIEW V AS SELECT R.A FROM R WHERE R.A > 10 AND R.B <= 2.5 AND R.C <> -3")
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Where[0].Clause.Const; got.Type() != relation.TypeInt || got.AsInt() != 10 {
		t.Errorf("int const = %v", got)
	}
	if got := v.Where[1].Clause.Const; got.Type() != relation.TypeFloat || got.AsFloat() != 2.5 {
		t.Errorf("float const = %v", got)
	}
	if got := v.Where[2].Clause.Const; got.AsInt() != -3 {
		t.Errorf("negative const = %v", got)
	}
}

func TestParseStringEscapes(t *testing.T) {
	v, err := Parse("CREATE VIEW V AS SELECT R.A FROM R WHERE R.A = 'O''Hare'")
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Where[0].Clause.Const.AsString(); got != "O'Hare" {
		t.Errorf("escaped string = %q", got)
	}
}

func TestParseAlias(t *testing.T) {
	v, err := Parse("CREATE VIEW V AS SELECT R.A AS X (AD = true) FROM R")
	if err != nil {
		t.Fatal(err)
	}
	if v.Select[0].Alias != "X" || v.Select[0].OutputName() != "X" {
		t.Errorf("alias = %+v", v.Select[0])
	}
}

func TestParseComments(t *testing.T) {
	v, err := Parse("CREATE VIEW V AS -- comment here\nSELECT R.A FROM R")
	if err != nil {
		t.Fatal(err)
	}
	if v.Name != "V" {
		t.Error("comment parsing broke the statement")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT R.A FROM R",
		"CREATE VIEW V AS SELECT FROM R",
		"CREATE VIEW V AS SELECT R.A",
		"CREATE VIEW V AS SELECT R.A FROM R WHERE",
		"CREATE VIEW V AS SELECT R.A FROM R WHERE R.A >",
		"CREATE VIEW V (VE = ??) AS SELECT R.A FROM R",
		"CREATE VIEW V AS SELECT R.A (XX = true) FROM R",
		"CREATE VIEW V AS SELECT R.A (AD = maybe) FROM R",
		"CREATE VIEW V AS SELECT R.A FROM R trailing garbage , ,",
		"CREATE VIEW V AS SELECT S.A FROM R",           // unbound qualifier
		"CREATE VIEW V AS SELECT R.A, R.A FROM R",      // duplicate output column
		"CREATE VIEW V AS SELECT R.A FROM R, R",        // duplicate binding
		"CREATE VIEW V AS SELECT R.A FROM R WHERE 'x'", // clause starts with constant
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseUnterminatedString(t *testing.T) {
	if _, err := Parse("CREATE VIEW V AS SELECT R.A FROM R WHERE R.A = 'oops"); err == nil {
		t.Error("unterminated string should fail")
	}
}

func TestPrintRoundTrip(t *testing.T) {
	sources := []string{
		asiaCustomer,
		"CREATE VIEW V (VE = ==) AS SELECT R.A (AD = true), R.B (AR = true) FROM R (RD = true) WHERE R.A > 10 (CD = true, CR = true)",
		"CREATE VIEW W AS SELECT R.A AS X, S.B FROM R, S WHERE R.A = S.A",
		"CREATE VIEW U (VE = <=) AS SELECT R.A FROM R WHERE R.N = 'Asia'",
	}
	for _, src := range sources {
		v1, err := Parse(src)
		if err != nil {
			t.Fatalf("parse 1 (%s): %v", src, err)
		}
		printed := Print(v1)
		v2, err := Parse(printed)
		if err != nil {
			t.Fatalf("parse of printed output failed:\n%s\n%v", printed, err)
		}
		if v1.Signature() != v2.Signature() {
			t.Errorf("round trip changed the view:\n%s\nvs\n%s", v1.Signature(), v2.Signature())
		}
	}
}

func TestCategory(t *testing.T) {
	cases := []struct {
		ad, ar bool
		want   int
	}{
		{true, true, 1}, {true, false, 2}, {false, true, 3}, {false, false, 4},
	}
	for _, c := range cases {
		s := SelectItem{Dispensable: c.ad, Replaceable: c.ar}
		if got := s.Category(); got != c.want {
			t.Errorf("Category(%v,%v) = %d, want %d", c.ad, c.ar, got, c.want)
		}
	}
}

func TestViewDefHelpers(t *testing.T) {
	v := MustParse(asiaCustomer)
	if v.FromBinding("C") == nil || v.FromBinding("Z") != nil {
		t.Error("FromBinding wrong")
	}
	if got := v.OutputNames(); len(got) != 3 || got[0] != "Name" {
		t.Errorf("OutputNames = %v", got)
	}
	if got := v.WhereFor("F"); len(got) != 2 {
		t.Errorf("WhereFor(F) = %d clauses, want 2", len(got))
	}
	sel := v.SelectFor("C")
	if len(sel) != 0 {
		// Unqualified references are not attributed to C before Qualify.
		t.Errorf("SelectFor(C) pre-qualification = %d", len(sel))
	}
}

func TestClone(t *testing.T) {
	v := MustParse(asiaCustomer)
	c := v.Clone()
	c.Select[0].Alias = "Changed"
	c.From[0].Rel = "Other"
	if v.Select[0].Alias == "Changed" || v.From[0].Rel == "Other" {
		t.Error("Clone shares state")
	}
}

func TestSignatureDistinguishes(t *testing.T) {
	a := MustParse("CREATE VIEW V AS SELECT R.A FROM R")
	b := MustParse("CREATE VIEW V AS SELECT R.B FROM R")
	cOne := MustParse("CREATE VIEW V (VE = ==) AS SELECT R.A FROM R")
	if a.Signature() == b.Signature() {
		t.Error("different selects share signature")
	}
	if a.Signature() == cOne.Signature() {
		t.Error("different VE share signature")
	}
}

func TestValidateCatchesUnboundCondition(t *testing.T) {
	v := &ViewDef{
		Name:   "V",
		Select: []SelectItem{{Attr: AttrRef{Rel: "R", Attr: "A"}}},
		From:   []FromItem{{Rel: "R"}},
		Where: []CondItem{{Clause: Clause{
			Left: AttrRef{Rel: "Z", Attr: "X"}, Op: relation.OpEQ, Const: relation.Int(1),
		}}},
	}
	if err := v.Validate(); err == nil {
		t.Error("unbound condition reference should fail validation")
	}
}

func TestPrintOmitsDefaults(t *testing.T) {
	v := MustParse("CREATE VIEW V AS SELECT R.A FROM R")
	out := Print(v)
	if strings.Contains(out, "AD =") || strings.Contains(out, "VE =") {
		t.Errorf("default parameters should be omitted:\n%s", out)
	}
}

func TestExtentParamStrings(t *testing.T) {
	for _, e := range []ExtentParam{ExtentAny, ExtentEqual, ExtentSubset, ExtentSuperset} {
		round, err := ParseExtentParam(e.String())
		if err != nil || round != e {
			t.Errorf("extent round trip %v: %v, %v", e, round, err)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse("not sql")
}
