package esql

// QueryName is the synthetic definition name ParseQuery stamps on ad-hoc
// queries; routed query results are named after it.
const QueryName = "Q"

// ParseQuery parses one bare E-SQL SELECT statement — the ad-hoc query form
// the warehouse router accepts:
//
//	SELECT C.Name, F.Dest FROM Customer C, FlightRes F
//	WHERE C.Name = F.PName AND F.Dest = 'Asia'
//
// The grammar is the body of Figure 2's CREATE VIEW without the header:
// evolution-parameter groups are still accepted after select items, from
// items, and where clauses (a query has no evolution behavior, so they are
// carried but ignored by the router). The returned definition bears the
// synthetic name QueryName and the default VE parameter, and has passed the
// same Validate as a parsed view.
func ParseQuery(src string) (*ViewDef, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	v := &ViewDef{Name: QueryName}
	if err := p.keyword("SELECT"); err != nil {
		return nil, err
	}
	if err := p.parseSelect(v); err != nil {
		return nil, err
	}
	if err := p.keyword("FROM"); err != nil {
		return nil, err
	}
	if err := p.parseFrom(v); err != nil {
		return nil, err
	}
	if p.isKeyword("WHERE") {
		p.advance()
		if err := p.parseWhere(v); err != nil {
			return nil, err
		}
	}
	if p.cur().kind == tokSemi {
		p.advance()
	}
	if p.cur().kind != tokEOF {
		return nil, p.errf("trailing input: %s", p.cur())
	}
	if err := v.Validate(); err != nil {
		return nil, err
	}
	return v, nil
}

// MustParseQuery is ParseQuery that panics on error; for tests and fixtures.
func MustParseQuery(src string) *ViewDef {
	v, err := ParseQuery(src)
	if err != nil {
		panic(err)
	}
	return v
}
