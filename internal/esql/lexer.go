package esql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp // < <= = >= > <> != ~ ==
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokSemi
	tokStar
)

// token is one lexical unit with its source position for error reporting.
type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer tokenizes E-SQL source.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the whole input up front; E-SQL statements are short so a
// two-pass design keeps the parser simple.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, t)
		if t.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			// SQL line comment.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, pos: l.pos}, nil

scan:
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '(':
		l.pos++
		return token{tokLParen, "(", start}, nil
	case c == ')':
		l.pos++
		return token{tokRParen, ")", start}, nil
	case c == ',':
		l.pos++
		return token{tokComma, ",", start}, nil
	case c == '.':
		l.pos++
		return token{tokDot, ".", start}, nil
	case c == ';':
		l.pos++
		return token{tokSemi, ";", start}, nil
	case c == '*':
		l.pos++
		return token{tokStar, "*", start}, nil
	case c == '\'':
		l.pos++
		var b strings.Builder
		for l.pos < len(l.src) {
			if l.src[l.pos] == '\'' {
				// '' is an escaped quote.
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					b.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				return token{tokString, b.String(), start}, nil
			}
			b.WriteByte(l.src[l.pos])
			l.pos++
		}
		return token{}, parseErrorf(start, "unterminated string literal")
	case c == '<' || c == '>' || c == '=' || c == '!' || c == '~':
		op := string(c)
		l.pos++
		if l.pos < len(l.src) {
			two := op + string(l.src[l.pos])
			switch two {
			case "<=", ">=", "<>", "!=", "==":
				l.pos++
				op = two
			}
		}
		return token{tokOp, op, start}, nil
	case c >= '0' && c <= '9' || c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
		l.pos++
		for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.') {
			// A dot followed by a non-digit is a qualifier dot, not a
			// decimal point (e.g. "1.R" cannot occur but "R1.A" reaches
			// the ident path, so digits here are safe).
			if l.src[l.pos] == '.' && (l.pos+1 >= len(l.src) || l.src[l.pos+1] < '0' || l.src[l.pos+1] > '9') {
				break
			}
			l.pos++
		}
		return token{tokNumber, l.src[start:l.pos], start}, nil
	case isIdentStart(rune(c)):
		l.pos++
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			l.pos++
		}
		return token{tokIdent, l.src[start:l.pos], start}, nil
	}
	return token{}, parseErrorf(l.pos, "unexpected character %q", c)
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '$'
}
