package esql

import "fmt"

// ParseError reports a lexical or syntactic error in an E-SQL view
// definition, carrying the byte offset into the source where the parse
// failed. It is the typed form of every error Parse returns for malformed
// input (semantic validation errors from ViewDef.Validate remain plain);
// callers unwrap it with errors.As:
//
//	var perr *esql.ParseError
//	if errors.As(err, &perr) {
//	    fmt.Printf("syntax error at byte %d: %s\n", perr.Offset, perr.Msg)
//	}
type ParseError struct {
	// Offset is the byte offset into the source at which the error was
	// detected.
	Offset int
	// Msg describes the failure, without the "esql:" prefix or position
	// suffix (Error adds both).
	Msg string
}

// Error renders the error in the package's historical format, so the typed
// error is a drop-in replacement for the fmt.Errorf strings it replaced.
func (e *ParseError) Error() string {
	return fmt.Sprintf("esql: %s (at offset %d)", e.Msg, e.Offset)
}

// parseErrorf builds a *ParseError at the given offset.
func parseErrorf(offset int, format string, args ...interface{}) error {
	return &ParseError{Offset: offset, Msg: fmt.Sprintf(format, args...)}
}
