// Package esql implements Evolvable SQL (E-SQL), the paper's extension of
// SQL SELECT-FROM-WHERE with evolution preferences (Section 4, Figure 2):
// per-attribute dispensable/replaceable flags (AD, AR), per-condition flags
// (CD, CR), per-relation flags (RD, RR), and the view-extent parameter VE
// (Figure 3).
//
// Paper mapping:
//
//   - ast.go — the AST (ViewDef, SelectItem, FromItem, CondItem, Clause)
//     with the evolution parameters of Figure 3, the preserved-attribute
//     categories of Figure 6 (SelectItem.Category), structural validation,
//     and the canonical Signature used to deduplicate rewritings.
//   - lexer.go, parser.go — a hand-written lexer and recursive-descent
//     parser for the surface syntax of Figure 2.
//   - printer.go — a printer that round-trips through the parser, used by
//     the view synchronizer's logs and the esqlfmt tool.
//
// The package is purely syntactic: semantics (qualification against a
// space, evaluation, rewriting legality) live in internal/exec and
// internal/synchronize.
package esql
