package esql

import (
	"strconv"
	"strings"

	"repro/internal/relation"
)

// Parse parses one E-SQL CREATE VIEW statement (Figure 2 syntax):
//
//	CREATE VIEW Asia-Customer (VE = ~) AS
//	SELECT Name, Address, Phone (AD = true, AR = true)
//	FROM Customer C (RR = true), FlightRes F
//	WHERE C.Name = F.PName AND F.Dest = 'Asia' (CD = true)
//
// Evolution-parameter groups "(AD = true, AR = false)" may follow any select
// item, from item, or where clause; omitted parameters default to false
// (and VE defaults to ~, "no restriction"). The view name may contain
// dashes only via quoting with underscores in this implementation; the
// examples use identifiers.
func Parse(src string) (*ViewDef, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	v, err := p.parseView()
	if err != nil {
		return nil, err
	}
	if err := v.Validate(); err != nil {
		return nil, err
	}
	return v, nil
}

// MustParse is Parse that panics on error; for tests and fixtures.
func MustParse(src string) *ViewDef {
	v, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return v
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) advance()   { p.pos++ }
func (p *parser) peek() token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return token{kind: tokEOF}
}

func (p *parser) errf(format string, args ...interface{}) error {
	return parseErrorf(p.cur().pos, format, args...)
}

// keyword consumes an identifier matching kw case-insensitively.
func (p *parser) keyword(kw string) error {
	t := p.cur()
	if t.kind != tokIdent || !strings.EqualFold(t.text, kw) {
		return p.errf("expected %s, found %s", kw, t)
	}
	p.advance()
	return nil
}

func (p *parser) isKeyword(kw string) bool {
	t := p.cur()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) expect(k tokenKind, what string) (token, error) {
	t := p.cur()
	if t.kind != k {
		return token{}, p.errf("expected %s, found %s", what, t)
	}
	p.advance()
	return t, nil
}

func (p *parser) parseView() (*ViewDef, error) {
	if err := p.keyword("CREATE"); err != nil {
		return nil, err
	}
	if err := p.keyword("VIEW"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "view name")
	if err != nil {
		return nil, err
	}
	v := &ViewDef{Name: name.text}

	// Optional "(VE = x)".
	if p.cur().kind == tokLParen {
		if err := p.parseExtentGroup(v); err != nil {
			return nil, err
		}
	}
	if err := p.keyword("AS"); err != nil {
		return nil, err
	}
	if err := p.keyword("SELECT"); err != nil {
		return nil, err
	}
	if err := p.parseSelect(v); err != nil {
		return nil, err
	}
	if err := p.keyword("FROM"); err != nil {
		return nil, err
	}
	if err := p.parseFrom(v); err != nil {
		return nil, err
	}
	if p.isKeyword("WHERE") {
		p.advance()
		if err := p.parseWhere(v); err != nil {
			return nil, err
		}
	}
	if p.cur().kind == tokSemi {
		p.advance()
	}
	if p.cur().kind != tokEOF {
		return nil, p.errf("trailing input: %s", p.cur())
	}
	return v, nil
}

func (p *parser) parseExtentGroup(v *ViewDef) error {
	p.advance() // (
	if err := p.keyword("VE"); err != nil {
		return err
	}
	if t := p.cur(); t.kind != tokOp || t.text != "=" {
		return p.errf("expected = after VE, found %s", t)
	}
	p.advance()
	t := p.cur()
	var raw string
	switch t.kind {
	case tokOp:
		raw = t.text
	case tokIdent:
		raw = strings.ToLower(t.text)
	default:
		return p.errf("expected VE value, found %s", t)
	}
	ve, err := ParseExtentParam(raw)
	if err != nil {
		return p.errf("%v", err)
	}
	v.Extent = ve
	p.advance()
	_, err = p.expect(tokRParen, ")")
	return err
}

// parseParamGroup parses "(K = true|false, ...)" and returns the flags.
func (p *parser) parseParamGroup(allowed ...string) (map[string]bool, error) {
	p.advance() // (
	flags := map[string]bool{}
	for {
		key, err := p.expect(tokIdent, "parameter name")
		if err != nil {
			return nil, err
		}
		kU := strings.ToUpper(key.text)
		ok := false
		for _, a := range allowed {
			if kU == a {
				ok = true
				break
			}
		}
		if !ok {
			return nil, p.errf("parameter %s not allowed here (want one of %s)", key.text, strings.Join(allowed, ", "))
		}
		if t := p.cur(); t.kind != tokOp || t.text != "=" {
			return nil, p.errf("expected = after %s, found %s", key.text, t)
		}
		p.advance()
		val, err := p.expect(tokIdent, "true or false")
		if err != nil {
			return nil, err
		}
		switch strings.ToLower(val.text) {
		case "true":
			flags[kU] = true
		case "false":
			flags[kU] = false
		default:
			return nil, p.errf("expected true or false, found %q", val.text)
		}
		if p.cur().kind == tokComma {
			p.advance()
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return nil, err
	}
	return flags, nil
}

func (p *parser) parseSelect(v *ViewDef) error {
	for {
		ref, err := p.parseAttrRef()
		if err != nil {
			return err
		}
		item := SelectItem{Attr: ref}
		// Optional alias: "AS name" or bare identifier that is not a
		// keyword and not the start of a parameter group.
		if p.isKeyword("AS") {
			p.advance()
			a, err := p.expect(tokIdent, "alias")
			if err != nil {
				return err
			}
			item.Alias = a.text
		}
		if p.cur().kind == tokLParen {
			flags, err := p.parseParamGroup("AD", "AR")
			if err != nil {
				return err
			}
			item.Dispensable = flags["AD"]
			item.Replaceable = flags["AR"]
		}
		v.Select = append(v.Select, item)
		if p.cur().kind == tokComma {
			p.advance()
			continue
		}
		return nil
	}
}

func (p *parser) parseFrom(v *ViewDef) error {
	for {
		name, err := p.expect(tokIdent, "relation name")
		if err != nil {
			return err
		}
		item := FromItem{Rel: name.text}
		// Optional "IS.Rel" qualification.
		if p.cur().kind == tokDot {
			p.advance()
			rel, err := p.expect(tokIdent, "relation name after source qualifier")
			if err != nil {
				return err
			}
			item.Source = item.Rel
			item.Rel = rel.text
		}
		// Optional alias (bare identifier that is not WHERE).
		if t := p.cur(); t.kind == tokIdent && !p.isKeyword("WHERE") {
			item.Alias = t.text
			p.advance()
		}
		if p.cur().kind == tokLParen {
			flags, err := p.parseParamGroup("RD", "RR")
			if err != nil {
				return err
			}
			item.Dispensable = flags["RD"]
			item.Replaceable = flags["RR"]
		}
		v.From = append(v.From, item)
		if p.cur().kind == tokComma {
			p.advance()
			continue
		}
		return nil
	}
}

func (p *parser) parseWhere(v *ViewDef) error {
	for {
		// Clauses may be parenthesized: "(C.Name = F.PName)".
		paren := false
		if p.cur().kind == tokLParen {
			paren = true
			p.advance()
		}
		cl, err := p.parseClause()
		if err != nil {
			return err
		}
		if paren {
			if _, err := p.expect(tokRParen, ")"); err != nil {
				return err
			}
		}
		item := CondItem{Clause: cl}
		if p.cur().kind == tokLParen && p.peek().kind == tokIdent &&
			(strings.EqualFold(p.peek().text, "CD") || strings.EqualFold(p.peek().text, "CR")) {
			flags, err := p.parseParamGroup("CD", "CR")
			if err != nil {
				return err
			}
			item.Dispensable = flags["CD"]
			item.Replaceable = flags["CR"]
		}
		v.Where = append(v.Where, item)
		if p.isKeyword("AND") {
			p.advance()
			continue
		}
		return nil
	}
}

func (p *parser) parseClause() (Clause, error) {
	left, err := p.parseAttrRef()
	if err != nil {
		return Clause{}, err
	}
	opTok, err := p.expect(tokOp, "comparison operator")
	if err != nil {
		return Clause{}, err
	}
	op, err := relation.ParseOp(opTok.text)
	if err != nil {
		return Clause{}, p.errf("%v", err)
	}
	cl := Clause{Left: left, Op: op}
	switch t := p.cur(); t.kind {
	case tokIdent:
		right, err := p.parseAttrRef()
		if err != nil {
			return Clause{}, err
		}
		cl.Right = right
	case tokNumber:
		p.advance()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return Clause{}, p.errf("bad number %q", t.text)
			}
			cl.Const = relation.Float(f)
		} else {
			i, err := strconv.ParseInt(t.text, 10, 64)
			if err != nil {
				return Clause{}, p.errf("bad number %q", t.text)
			}
			cl.Const = relation.Int(i)
		}
	case tokString:
		p.advance()
		cl.Const = relation.String(t.text)
	default:
		return Clause{}, p.errf("expected attribute or constant, found %s", t)
	}
	return cl, nil
}

func (p *parser) parseAttrRef() (AttrRef, error) {
	first, err := p.expect(tokIdent, "attribute reference")
	if err != nil {
		return AttrRef{}, err
	}
	if p.cur().kind == tokDot {
		p.advance()
		second, err := p.expect(tokIdent, "attribute name after qualifier")
		if err != nil {
			return AttrRef{}, err
		}
		return AttrRef{Rel: first.text, Attr: second.text}, nil
	}
	return AttrRef{Attr: first.text}, nil
}
