package esql

import (
	"fmt"
	"strings"

	"repro/internal/relation"
)

// ExtentParam is the view-extent evolution parameter VE of Figure 3: how the
// extent of an evolved view may relate to the original extent.
type ExtentParam uint8

// VE values. The paper writes ≈ (any), ≡ (equal), ⊇ (superset), ⊆ (subset).
const (
	ExtentAny      ExtentParam = iota // "≈" — no restriction on the new extent
	ExtentEqual                       // "≡" — new extent must equal old extent
	ExtentSuperset                    // "⊇" — new extent must contain old extent
	ExtentSubset                      // "⊆" — new extent must be contained in old extent
)

// String renders the VE parameter in E-SQL's ASCII surface syntax.
func (e ExtentParam) String() string {
	switch e {
	case ExtentEqual:
		return "=="
	case ExtentSuperset:
		return ">="
	case ExtentSubset:
		return "<="
	default:
		return "~"
	}
}

// ParseExtentParam parses both the ASCII forms and the Unicode forms.
func ParseExtentParam(s string) (ExtentParam, error) {
	switch s {
	case "~", "≈", "any":
		return ExtentAny, nil
	case "==", "≡", "equal":
		return ExtentEqual, nil
	case ">=", "⊇", "superset":
		return ExtentSuperset, nil
	case "<=", "⊆", "subset":
		return ExtentSubset, nil
	}
	return ExtentAny, fmt.Errorf("esql: unknown VE parameter %q", s)
}

// AttrRef is a qualified attribute reference "Rel.Attr". Rel refers to a
// FROM-clause relation (or its alias); Attr is the attribute within it.
type AttrRef struct {
	Rel  string
	Attr string
}

// String renders "Rel.Attr", or just Attr when unqualified.
func (a AttrRef) String() string {
	if a.Rel == "" {
		return a.Attr
	}
	return a.Rel + "." + a.Attr
}

// Qualified returns the canonical qualified name used as the algebra-level
// column name.
func (a AttrRef) Qualified() string { return a.String() }

// SelectItem is one SELECT-clause entry with its evolution parameters:
// AD (attribute-dispensable) and AR (attribute-replaceable), both defaulting
// to false per Figure 3. Alias is the local name B_i exposed by the view;
// when empty the attribute keeps its unqualified name.
type SelectItem struct {
	Attr        AttrRef
	Alias       string
	Dispensable bool // AD
	Replaceable bool // AR
}

// OutputName is the column name the view interface exposes for this item.
func (s SelectItem) OutputName() string {
	if s.Alias != "" {
		return s.Alias
	}
	return s.Attr.Attr
}

// Category returns the preserved-attribute category of Figure 6:
// 1 = (AD,AR)=(true,true), 2 = (true,false), 3 = (false,true),
// 4 = (false,false). Categories 3 and 4 are indispensable.
func (s SelectItem) Category() int {
	switch {
	case s.Dispensable && s.Replaceable:
		return 1
	case s.Dispensable:
		return 2
	case s.Replaceable:
		return 3
	default:
		return 4
	}
}

// FromItem is one FROM-clause entry with its evolution parameters RD
// (relation-dispensable) and RR (relation-replaceable). Source names the
// information source holding the relation ("IS1"); it may be empty when the
// MKB resolves relations by name alone.
type FromItem struct {
	Source      string
	Rel         string
	Alias       string
	Dispensable bool // RD
	Replaceable bool // RR
}

// Binding is the name by which the SELECT and WHERE clauses refer to this
// relation: the alias if present, else the relation name.
func (f FromItem) Binding() string {
	if f.Alias != "" {
		return f.Alias
	}
	return f.Rel
}

// CondItem is one WHERE-clause primitive clause with its evolution
// parameters CD (condition-dispensable) and CR (condition-replaceable).
type CondItem struct {
	Clause      Clause
	Dispensable bool // CD
	Replaceable bool // CR
}

// Clause is an E-SQL primitive clause over qualified attribute references:
// Left θ Right (attribute-attribute) or Left θ Const (attribute-constant).
type Clause struct {
	Left  AttrRef
	Op    relation.Op
	Right AttrRef        // zero value means constant comparison
	Const relation.Value // used when Right is zero
}

// IsJoin reports whether the clause relates attributes of two different
// FROM-clause relations (an equi- or theta-join predicate).
func (c Clause) IsJoin() bool {
	return c.Right.Attr != "" && c.Left.Rel != c.Right.Rel
}

// String renders the clause in surface syntax.
func (c Clause) String() string {
	if c.Right.Attr != "" {
		return fmt.Sprintf("%s %s %s", c.Left, c.Op, c.Right)
	}
	if c.Const.Type() == relation.TypeString {
		// Embedded quotes are doubled, mirroring the lexer's '' escape, so
		// printed clauses always re-parse (a property FuzzParse enforces).
		escaped := strings.ReplaceAll(c.Const.Text(), "'", "''")
		return fmt.Sprintf("%s %s '%s'", c.Left, c.Op, escaped)
	}
	return fmt.Sprintf("%s %s %s", c.Left, c.Op, c.Const.Text())
}

// ViewDef is a complete E-SQL view definition (Figure 2): the view name,
// the VE parameter, and the SELECT/FROM/WHERE clauses with per-component
// evolution parameters.
type ViewDef struct {
	Name   string
	Extent ExtentParam
	Select []SelectItem
	From   []FromItem
	Where  []CondItem
}

// Clone returns a deep copy of the view definition.
func (v *ViewDef) Clone() *ViewDef {
	cp := &ViewDef{Name: v.Name, Extent: v.Extent}
	cp.Select = append([]SelectItem(nil), v.Select...)
	cp.From = append([]FromItem(nil), v.From...)
	cp.Where = append([]CondItem(nil), v.Where...)
	return cp
}

// FromBinding returns the FROM item bound to the given name, or nil.
func (v *ViewDef) FromBinding(binding string) *FromItem {
	for i := range v.From {
		if v.From[i].Binding() == binding {
			return &v.From[i]
		}
	}
	return nil
}

// OutputNames returns the view interface's column names in order.
func (v *ViewDef) OutputNames() []string {
	out := make([]string, len(v.Select))
	for i, s := range v.Select {
		out[i] = s.OutputName()
	}
	return out
}

// SelectFor returns the SELECT items drawn from the given FROM binding.
func (v *ViewDef) SelectFor(binding string) []SelectItem {
	var out []SelectItem
	for _, s := range v.Select {
		if s.Attr.Rel == binding {
			out = append(out, s)
		}
	}
	return out
}

// WhereFor returns the WHERE items that reference the given FROM binding.
func (v *ViewDef) WhereFor(binding string) []CondItem {
	var out []CondItem
	for _, c := range v.Where {
		if c.Clause.Left.Rel == binding || c.Clause.Right.Rel == binding {
			out = append(out, c)
		}
	}
	return out
}

// Validate checks internal consistency: every attribute reference resolves
// to a FROM binding, bindings are unique, and the view exposes at least one
// column.
func (v *ViewDef) Validate() error {
	if v.Name == "" {
		return fmt.Errorf("esql: view has no name")
	}
	if len(v.Select) == 0 {
		return fmt.Errorf("esql: view %s has an empty SELECT clause", v.Name)
	}
	if len(v.From) == 0 {
		return fmt.Errorf("esql: view %s has an empty FROM clause", v.Name)
	}
	bindings := map[string]bool{}
	for _, f := range v.From {
		b := f.Binding()
		if bindings[b] {
			return fmt.Errorf("esql: view %s binds %q twice in FROM", v.Name, b)
		}
		bindings[b] = true
	}
	seenOut := map[string]bool{}
	for _, s := range v.Select {
		if s.Attr.Rel != "" && !bindings[s.Attr.Rel] {
			return fmt.Errorf("esql: view %s selects %s but %q is not in FROM", v.Name, s.Attr, s.Attr.Rel)
		}
		o := s.OutputName()
		if seenOut[o] {
			return fmt.Errorf("esql: view %s exposes column %q twice", v.Name, o)
		}
		seenOut[o] = true
	}
	for _, c := range v.Where {
		if c.Clause.Left.Rel != "" && !bindings[c.Clause.Left.Rel] {
			return fmt.Errorf("esql: view %s condition references unbound %q", v.Name, c.Clause.Left.Rel)
		}
		if c.Clause.Right.Attr != "" && c.Clause.Right.Rel != "" && !bindings[c.Clause.Right.Rel] {
			return fmt.Errorf("esql: view %s condition references unbound %q", v.Name, c.Clause.Right.Rel)
		}
	}
	return nil
}

// String renders the full CREATE VIEW statement; see Printer for options.
func (v *ViewDef) String() string { return Print(v) }

// Signature returns a canonical one-line fingerprint of the definition used
// to deduplicate rewritings that differ only in generation order.
func (v *ViewDef) Signature() string {
	var b strings.Builder
	b.WriteString("VE=" + v.Extent.String() + ";S:")
	for _, s := range v.Select {
		fmt.Fprintf(&b, "%s/%s/%v/%v,", s.Attr, s.OutputName(), s.Dispensable, s.Replaceable)
	}
	b.WriteString("F:")
	for _, f := range v.From {
		fmt.Fprintf(&b, "%s.%s/%s/%v/%v,", f.Source, f.Rel, f.Binding(), f.Dispensable, f.Replaceable)
	}
	b.WriteString("W:")
	for _, c := range v.Where {
		fmt.Fprintf(&b, "%s/%v/%v,", c.Clause.String(), c.Dispensable, c.Replaceable)
	}
	return b.String()
}
