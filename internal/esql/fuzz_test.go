package esql

import (
	"testing"
)

// fuzzSeeds is the seed corpus: the paper's running example, the examples/
// programs' views, printed forms of the scenario generators' synthetic
// views (ChainView, WideView, Churn twins — inlined here because esql
// cannot import scenario), and a handful of syntax edge cases from the unit
// tests.
var fuzzSeeds = []string{
	// Paper Equation 2 (scenario.AsiaCustomerESQL).
	`CREATE VIEW AsiaCustomer (VE = ~) AS
SELECT C.Name (AR = true), C.Address (AR = true), C.Phone (AD = true, AR = true)
FROM Customer C (RR = true), FlightRes F
WHERE (C.Name = F.PName) (CR = true) AND (F.Dest = 'Tokyo') (CD = true)`,
	// examples/quickstart.
	`CREATE VIEW Catalog (VE = ~) AS
SELECT P.PartID (AR = true), P.Name (AR = true), P.Price (AD = true)
FROM Parts P (RR = true)
WHERE (P.Price > 15) (CD = true)`,
	// Printed scenario.ChainView(2, 100) shape.
	`CREATE VIEW VChain (VE = ~) AS
SELECT R1.B AS B1 (AD = true, AR = true), R2.B AS B2 (AD = true, AR = true)
FROM R1 (RD = true, RR = true), R2 (RD = true, RR = true)
WHERE (R1.C < 100) (CD = true, CR = true) AND (R1.A = R2.A) (CD = true, CR = true)`,
	// Printed scenario.WideView(2) / Churn twin shape.
	`CREATE VIEW VWide (VE = ~) AS
SELECT W0.K (AR = true), W0.A1 (AD = true, AR = true), W0.A2 (AD = true, AR = true)
FROM RA, W0 (RR = true)
WHERE (RA.K = W0.K) (CR = true)`,
	// Syntax corners: VE spellings, aliases, constants, quote escapes.
	"CREATE VIEW V (VE = ==) AS SELECT R.A FROM R",
	"CREATE VIEW V (VE = superset) AS SELECT R.A AS X (AD = true) FROM R",
	"CREATE VIEW V AS SELECT R.A FROM R WHERE R.A > 10 AND R.B <= 2.5 AND R.C <> -3",
	"CREATE VIEW V AS SELECT R.A FROM R WHERE R.A = 'O''Hare'",
	"CREATE VIEW V AS SELECT Name, Address FROM Customer",
}

// fuzzRejectSeeds are near-miss inputs that must fail cleanly — they seed
// the rejection paths without being held to the accept invariant.
var fuzzRejectSeeds = []string{
	"CREATE VIEW",
	"CREATE VIEW V AS SELECT FROM R",
	"SELECT R.A FROM R",
	"(((((",
	"CREATE VIEW V (VE = ~ AS SELECT R.A FROM R WHERE (R.A = 'x'",
}

// FuzzParse hammers the E-SQL parser with mutated view sources. The
// invariants: Parse never panics, and any accepted definition survives a
// Print→Parse round trip with its canonical signature intact (printing is
// the inverse of parsing on the accepted language — the property the
// esqlfmt tool relies on).
func FuzzParse(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add(seed)
	}
	for _, seed := range fuzzRejectSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		v, err := Parse(src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		printed := Print(v)
		v2, err := Parse(printed)
		if err != nil {
			t.Fatalf("round trip rejected printed form\ninput: %q\nprinted: %q\nerr: %v", src, printed, err)
		}
		if v.Signature() != v2.Signature() {
			t.Fatalf("round trip changed signature\ninput: %q\nprinted: %q\nsig1: %s\nsig2: %s",
				src, printed, v.Signature(), v2.Signature())
		}
	})
}

// TestFuzzSeedsAccepted keeps the corpus honest: the well-formed seeds must
// parse today and the reject seeds must fail, so corpus rot (e.g. after a
// syntax change) is caught by plain `go test`, not only by fuzzing runs.
func TestFuzzSeedsAccepted(t *testing.T) {
	for i, seed := range fuzzSeeds {
		if _, err := Parse(seed); err != nil {
			t.Errorf("seed %d no longer parses: %v\n%s", i, err, seed)
		}
	}
	for i, seed := range fuzzRejectSeeds {
		if _, err := Parse(seed); err == nil {
			t.Errorf("reject seed %d unexpectedly parses:\n%s", i, seed)
		}
	}
}
