package esql

import (
	"fmt"
	"strings"
)

// Print renders a view definition back into parseable E-SQL surface syntax.
// Default (false) evolution parameters are omitted, matching the paper's
// convention ("with all evolution parameters set to false omitted").
func Print(v *ViewDef) string {
	var b strings.Builder
	fmt.Fprintf(&b, "CREATE VIEW %s", v.Name)
	if v.Extent != ExtentAny {
		fmt.Fprintf(&b, " (VE = %s)", v.Extent)
	}
	b.WriteString(" AS\nSELECT ")
	for i, s := range v.Select {
		if i > 0 {
			b.WriteString(",\n       ")
		}
		b.WriteString(s.Attr.String())
		if s.Alias != "" {
			b.WriteString(" AS " + s.Alias)
		}
		writeFlags(&b, [2]string{"AD", "AR"}, s.Dispensable, s.Replaceable)
	}
	b.WriteString("\nFROM ")
	for i, f := range v.From {
		if i > 0 {
			b.WriteString(", ")
		}
		if f.Source != "" {
			b.WriteString(f.Source + "." + f.Rel)
		} else {
			b.WriteString(f.Rel)
		}
		if f.Alias != "" {
			b.WriteString(" " + f.Alias)
		}
		writeFlags(&b, [2]string{"RD", "RR"}, f.Dispensable, f.Replaceable)
	}
	if len(v.Where) > 0 {
		b.WriteString("\nWHERE ")
		for i, c := range v.Where {
			if i > 0 {
				b.WriteString("\n  AND ")
			}
			b.WriteString("(" + c.Clause.String() + ")")
			writeFlags(&b, [2]string{"CD", "CR"}, c.Dispensable, c.Replaceable)
		}
	}
	return b.String()
}

func writeFlags(b *strings.Builder, names [2]string, dispensable, replaceable bool) {
	if !dispensable && !replaceable {
		return
	}
	var parts []string
	if dispensable {
		parts = append(parts, names[0]+" = true")
	}
	if replaceable {
		parts = append(parts, names[1]+" = true")
	}
	b.WriteString(" (" + strings.Join(parts, ", ") + ")")
}
