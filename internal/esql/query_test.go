package esql

import (
	"strings"
	"testing"

	"repro/internal/relation"
)

func TestParseQueryBasic(t *testing.T) {
	q, err := ParseQuery(`SELECT C.Name, F.Dest AS Where_To
FROM Customer C, FlightRes F
WHERE C.Name = F.PName AND F.Dest = 'Asia'`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != QueryName {
		t.Errorf("query name = %q, want %q", q.Name, QueryName)
	}
	if len(q.Select) != 2 || len(q.From) != 2 || len(q.Where) != 2 {
		t.Fatalf("shape = %d/%d/%d, want 2/2/2", len(q.Select), len(q.From), len(q.Where))
	}
	if got := q.Select[1].OutputName(); got != "Where_To" {
		t.Errorf("alias = %q, want Where_To", got)
	}
	if q.From[0].Binding() != "C" || q.From[1].Binding() != "F" {
		t.Errorf("bindings = %q, %q", q.From[0].Binding(), q.From[1].Binding())
	}
	if q.Where[1].Clause.Const != relation.String("Asia") {
		t.Errorf("const = %v", q.Where[1].Clause.Const)
	}
}

func TestParseQueryNoWhere(t *testing.T) {
	q, err := ParseQuery("SELECT A1, A2 FROM W1;")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where) != 0 || len(q.Select) != 2 {
		t.Fatalf("shape = %d select, %d where", len(q.Select), len(q.Where))
	}
}

func TestParseQueryRejects(t *testing.T) {
	for _, src := range []string{
		"",                                 // empty
		"CREATE VIEW V AS SELECT A FROM R", // view header is not a query
		"SELECT FROM R",                    // empty select
		"SELECT A",                         // missing FROM
		"SELECT A FROM R garbage :::",      // trailing junk
		"SELECT A, A FROM R",               // duplicate output column
		"SELECT R.A FROM S",                // unbound qualifier
	} {
		if _, err := ParseQuery(src); err == nil {
			t.Errorf("ParseQuery(%q) succeeded, want error", src)
		}
	}
}

func TestParseQueryAcceptsParamGroups(t *testing.T) {
	// Evolution parameters are legal view-body syntax; a query carries them
	// without meaning, so they must parse rather than error.
	q, err := ParseQuery("SELECT R.A (AD = true) FROM R (RR = true) WHERE (R.A > 1) (CD = true)")
	if err != nil {
		t.Fatal(err)
	}
	if !q.Select[0].Dispensable || !q.From[0].Replaceable || !q.Where[0].Dispensable {
		t.Error("parameter groups not carried through")
	}
}

func TestMustParseQueryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseQuery did not panic on bad input")
		}
	}()
	MustParseQuery("not a query")
}

func TestParseQueryRoundTripsViewBodies(t *testing.T) {
	// The body of a printed view re-parses as a query: the router feeds
	// view-shaped SQL back through ParseQuery in the serving tests.
	v := MustParse(`CREATE VIEW V (VE = ~) AS
SELECT R.A AS X, R.B FROM R WHERE R.A > 1 AND R.B <> 'x''y'`)
	printed := Print(v)
	i := strings.Index(printed, "SELECT")
	if i < 0 {
		t.Fatalf("printed view has no SELECT:\n%s", printed)
	}
	q, err := ParseQuery(printed[i:])
	if err != nil {
		t.Fatalf("reparse: %v\nbody:\n%s", err, printed[i:])
	}
	if len(q.Select) != len(v.Select) || len(q.Where) != len(v.Where) {
		t.Errorf("round-trip shape mismatch: %d/%d vs %d/%d",
			len(q.Select), len(q.Where), len(v.Select), len(v.Where))
	}
}
