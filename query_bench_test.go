package eve

// BenchmarkQueryRouted measures what transparent MV routing buys on the
// serving path: the same ad-hoc query answered three ways over a 4-way-join
// view at 1k/10k/100k base tuples.
//
//   - path=viewhit:  System.Query routes to the view's maintained extent
//                    (RouteViewExtent) — a cached routing decision plus an
//                    extent hand-off, no join executed
//   - path=residual: System.Query answers a narrowed query through a
//                    residual filter/project over the extent
//                    (RouteViewResidual) — one extent scan, still no join
//   - path=basescan: the identical query recomputed from base relations
//                    (what every query would cost without the router):
//                    three hash joins plus projection and dedup
//
// `make bench-query` records the grid in BENCH_query.json; the acceptance
// bar is view-hit ≥5x faster than base-scan at 10k tuples.

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/relation"
)

// queryBenchSystem builds R1..R4 (K, Ai) with n rows each, joined 1:1 on K,
// and registers the 4-way-join view V4 over them.
func queryBenchSystem(b *testing.B, n int) *System {
	b.Helper()
	sys, err := New()
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sys.Space.AddSource("IS1"); err != nil {
		b.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		name := fmt.Sprintf("R%d", i)
		r := relation.New(name, relation.NewSchema(
			relation.Attribute{Name: "K", Type: relation.TypeInt, Size: 20},
			relation.Attribute{Name: fmt.Sprintf("A%d", i), Type: relation.TypeInt, Size: 20},
		))
		for j := 0; j < n; j++ {
			if err := r.Insert(relation.Tuple{Int(int64(j)), Int(int64(j * i))}); err != nil {
				b.Fatal(err)
			}
		}
		if err := sys.Space.AddRelation("IS1", r); err != nil {
			b.Fatal(err)
		}
		sys.Space.MKB().SetCard(name, n)
	}
	if _, err := sys.DefineView(context.Background(), `CREATE VIEW V4 (VE = ~) AS
		SELECT R1.K, R1.A1, R2.A2, R3.A3, R4.A4
		FROM R1, R2, R3, R4
		WHERE R1.K = R2.K AND R2.K = R3.K AND R3.K = R4.K`); err != nil {
		b.Fatal(err)
	}
	return sys
}

const queryBenchSQL = `SELECT R1.K, R1.A1, R2.A2, R3.A3, R4.A4
	FROM R1, R2, R3, R4
	WHERE R1.K = R2.K AND R2.K = R3.K AND R3.K = R4.K`

func BenchmarkQueryRouted(b *testing.B) {
	ctx := context.Background()
	for _, path := range []string{"viewhit", "residual", "basescan"} {
		for _, rows := range []int{1_000, 10_000, 100_000} {
			b.Run(fmt.Sprintf("path=%s/rows=%d", path, rows), func(b *testing.B) {
				sys := queryBenchSystem(b, rows)
				residualSQL := fmt.Sprintf("%s AND R1.A1 > %d", queryBenchSQL, rows/2)
				baseQ := MustParseQuery(queryBenchSQL)

				// Pin each leg to the route it claims to measure.
				switch path {
				case "viewhit":
					if r, err := sys.Snapshot().RouteQuery(queryBenchSQL); err != nil || r.Kind != RouteViewExtent {
						b.Fatalf("route = %v, %v; want view-extent", r, err)
					}
				case "residual":
					if r, err := sys.Snapshot().RouteQuery(residualSQL); err != nil || r.Kind != RouteViewResidual {
						b.Fatalf("route = %v, %v; want view-residual", r, err)
					}
				}

				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var (
						res *Relation
						err error
					)
					switch path {
					case "viewhit":
						res, err = sys.Query(ctx, queryBenchSQL)
					case "residual":
						res, err = sys.Query(ctx, residualSQL)
					default: // basescan
						res, err = Evaluate(ctx, baseQ, sys.Space)
					}
					if err != nil {
						b.Fatal(err)
					}
					if res.Card() == 0 {
						b.Fatal("empty result")
					}
				}
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
			})
		}
	}
}
