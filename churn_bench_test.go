package eve

// BenchmarkEvolveChurn contrasts the two ways of driving a warehouse
// through a long evolution history (scenario.Churn: hundreds of capability
// changes over tens of twin views with donor replicas):
//
//   - cold: the step-by-step reference loop — one warehouse.ApplyChange per
//     change, so every change pays a snapshot, two worker-pool fan-outs, a
//     full per-view scan, and a from-scratch rewriting search per affected
//     view;
//   - session: one EvolveBatch over the same stream — changes that miss
//     every view skip the pipeline, structurally identical twins share one
//     memoized search, and compatible changes coalesce into a single
//     synchronize→rank→adopt pass.
//
// Both sides run the same warehouse configuration (exhaustive search with
// drop-variant enumeration), and the differential tests in internal/evolve
// prove the outcomes identical; this benchmark measures the saved work.

import (
	"context"
	"testing"

	"repro/internal/scenario"
)

// churnBenchParams is the Exp1-at-scale history the README quotes: 20 twin
// views (2 families × 10) over 12 droppable attributes with 2 donors each,
// and a 240-change stream of which roughly one in five touches a view.
func churnBenchParams() scenario.ChurnParams {
	return scenario.ChurnParams{
		Families:          2,
		TwinsPerFamily:    10,
		Width:             12,
		Donors:            2,
		Spares:            6,
		SpareAttrs:        5,
		Changes:           240,
		Seed:              7,
		FamilyDeleteRatio: 0.10,
		FamilyRenameRatio: 0.06,
		DonorRatio:        0.08,
	}
}

func buildChurnSystem(b *testing.B, h *scenario.ChurnHistory) *System {
	b.Helper()
	sp, err := h.BuildSpace()
	if err != nil {
		b.Fatal(err)
	}
	sys := NewSystemOver(sp)
	sys.Synchronizer.EnumerateDropVariants = true
	sys.Synchronizer.MaxDropVariants = 256
	for _, def := range h.Views() {
		if _, err := sys.RegisterView(context.Background(), def); err != nil {
			b.Fatal(err)
		}
	}
	return sys
}

// BenchmarkEvolveChurn reports ns per full history replay for the cold
// per-change loop and the evolution session. The acceptance bar is a ≥5x
// session advantage.
func BenchmarkEvolveChurn(b *testing.B) {
	h, err := scenario.Churn(churnBenchParams())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			sys := buildChurnSystem(b, h)
			b.StartTimer()
			for _, c := range h.Changes {
				if _, err := sys.ApplyChange(context.Background(), c); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("session", func(b *testing.B) {
		var last *System
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			sys := buildChurnSystem(b, h)
			b.StartTimer()
			if _, err := sys.EvolveBatch(context.Background(), h.Changes); err != nil {
				b.Fatal(err)
			}
			last = sys
		}
		if last != nil {
			// The history is deterministic, so the last timed replay's
			// counters stand for every replay — no extra probe run needed.
			b.StopTimer()
			stats := last.Session().Stats()
			b.ReportMetric(float64(stats.Skipped), "skipped/hist")
			b.ReportMetric(float64(stats.SearchesShared), "shared/hist")
			b.ReportMetric(float64(stats.Groups), "groups/hist")
		}
	})
}
