package eve

// BenchmarkClusterScale measures sharded scale-out serving: the aggregate
// routed-read throughput of an N-shard Cluster under mixed traffic, over
// the shards × readers grid. A writer goroutine churns continuously for
// the whole measurement — capability renames (spare and view-referenced
// family attributes alternating) interleaved with incremental data-update
// batches — while R reader goroutines issue ad-hoc routed queries whose
// target family and predicate constant rotate every request, so no read
// can hide in a version's route cache.
//
// What scaling buys on this workload is matching work, not parallelism:
// the cluster's FROM-compatibility index sends each query only to the
// shard whose views could answer it, so a single routed read scans ~V/N
// candidate views instead of all V — the shard-local analogue of the
// paper's query/view matching cost. Base data is replicated, writes are
// fanned out N ways (the cluster's true write amplification, visible in
// the flatter scaling of the write-heavy phases), and reads merge
// checksum-identically to the unsharded system, which the differential
// suite in internal/shard proves.
//
// Aggregate read throughput is the reads/s metric; the observer's
// per-phase latency means are attached as query-us / sync-us /
// maintain-us. `make bench-scale` records the grid in BENCH_scale.json.
// The acceptance bar: at 16 readers, 4 shards serve ≥2x the routed reads/s
// of 1 shard under the same churning writer.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/scenario"
)

// scaleBenchParams is the shared workload shape: many view families so the
// unsharded matching loop has real work to prune, small extents so routed
// execution does not drown the matching cost being measured.
var scaleBenchParams = scenario.ChurnParams{
	Families:       48,
	TwinsPerFamily: 2,
	Width:          6,
	Donors:         2,
	Spares:         4,
	SpareAttrs:     4,
	Changes:        1, // the space/view recipe is used; the writer generates its own stream
	Seed:           42,
}

// scaleBenchRows keeps extents small so routed execution stays cheap
// relative to the matching work the cluster prunes.
const scaleBenchRows = 30

// scaleBenchCluster builds the populated N-shard cluster with a shared
// metrics observer.
func scaleBenchCluster(b testing.TB, shards int, m *MetricsObserver) *Cluster {
	b.Helper()
	h, err := scenario.Churn(scaleBenchParams)
	if err != nil {
		b.Fatal(err)
	}
	sp, err := h.BuildSpace()
	if err != nil {
		b.Fatal(err)
	}
	if err := scenario.Populate(sp, scaleBenchRows); err != nil {
		b.Fatal(err)
	}
	cl, err := NewCluster(WithShards(shards), WithSpace(sp), WithObserver(m))
	if err != nil {
		b.Fatal(err)
	}
	for _, def := range h.Views() {
		if _, _, err := cl.RegisterView(context.Background(), def); err != nil {
			b.Fatal(err)
		}
	}
	return cl
}

// scaleChurnWriter runs the mixed write stream until done closes: spare
// renames (cheap passes), every 16th change a view-referenced family
// attribute rename (full synchronize→adopt over that family's twins), and
// every 3rd an 8-update insert/delete batch into a rotating family.
// Queries only read A1/A2, which the writer never touches, so the read
// workload stays valid throughout.
func scaleChurnWriter(b *testing.B, cl *Cluster, done <-chan struct{}, wrote *atomic.Int64) {
	famAttr := map[string]string{} // family -> current name of its A6
	spAttr := map[string]string{}  // spare -> current name of its B{n}_1
	ctx := context.Background()
	updArity := scaleBenchParams.Width + 1
	insert := true
	for i := 0; ; i++ {
		select {
		case <-done:
			return
		default:
		}
		var err error
		switch {
		case i%16 == 15: // view-referenced rename: full sync over the family's twins
			fam := fmt.Sprintf("W%d", 1+(i/16)%scaleBenchParams.Families)
			cur, next := famAttr[fam], fmt.Sprintf("T%d", i)
			if cur == "" {
				cur = fmt.Sprintf("A%d", scaleBenchParams.Width)
			} else if cur != fmt.Sprintf("A%d", scaleBenchParams.Width) {
				next = fmt.Sprintf("A%d", scaleBenchParams.Width) // rename back
			}
			famAttr[fam] = next
			_, err = cl.EvolveBatch(ctx, []Change{RenameAttribute(fam, cur, next)})
		case i%3 == 2: // data updates: 8-tuple batch into a rotating family
			fam := fmt.Sprintf("W%d", 1+i%scaleBenchParams.Families)
			batch := make([]Update, 8)
			for j := range batch {
				tup := make(Tuple, updArity)
				tup[0] = Int(int64(900_000 + j))
				for k := 1; k < updArity; k++ {
					tup[k] = Int(int64(k))
				}
				if insert {
					batch[j] = InsertTuple(fam, tup)
				} else {
					batch[j] = DeleteTuple(fam, tup)
				}
			}
			if i%(3*scaleBenchParams.Families) == 3*scaleBenchParams.Families-1 {
				insert = !insert // flip after a full family rotation
			}
			_, err = cl.ApplyUpdates(ctx, batch)
		default: // spare rename: a change no view references
			sp := fmt.Sprintf("SP%d", 1+i%scaleBenchParams.Spares)
			cur, next := spAttr[sp], fmt.Sprintf("S%d", i)
			if cur == "" {
				cur = fmt.Sprintf("B%d_1", 1+i%scaleBenchParams.Spares)
			} else if cur[0] != 'B' {
				next = fmt.Sprintf("B%d_1", 1+i%scaleBenchParams.Spares)
			}
			spAttr[sp] = next
			_, err = cl.EvolveBatch(ctx, []Change{RenameAttribute(sp, cur, next)})
		}
		if err != nil {
			b.Errorf("writer %d: %v", i, err)
			return
		}
		wrote.Add(1)
		// The stream is continuous but paced in wall time: real churn
		// arrives at an interval (eved defaults to 250ms), and a fixed
		// 5ms gap keeps churn-per-second identical across cells instead
		// of scaling with however long a cell's measurement window runs.
		time.Sleep(5 * time.Millisecond)
	}
}

func BenchmarkClusterScale(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		for _, readers := range []int{1, 4, 16, 64} {
			b.Run(fmt.Sprintf("shards=%d/readers=%d", shards, readers), func(b *testing.B) {
				m := &MetricsObserver{}
				cl := scaleBenchCluster(b, shards, m)
				done := make(chan struct{})
				writerDone := make(chan struct{})
				var wrote atomic.Int64
				go func() {
					defer close(writerDone)
					scaleChurnWriter(b, cl, done, &wrote)
				}()

				// Ad-hoc routed read: the family rotates and the predicate
				// constant never repeats, so every read is a distinct query
				// that routes afresh against the current snapshot — the
				// route cache (keyed by query signature, which embeds the
				// constant) can never hide the matching cost this benchmark
				// measures.
				read := func(i int) error {
					fam := 1 + i%scaleBenchParams.Families
					c := i
					sql := fmt.Sprintf("SELECT W%[1]d.A1, W%[1]d.A2 FROM W%[1]d WHERE W%[1]d.A1 > %d", fam, c)
					res, err := cl.Query(context.Background(), sql)
					if err != nil {
						return fmt.Errorf("read %d (%s): %w", i, sql, err)
					}
					if res.Card() < 0 {
						panic("unreachable")
					}
					return nil
				}

				b.ReportAllocs()
				var next atomic.Int64
				start := make(chan struct{})
				var wg sync.WaitGroup
				errs := make([]error, readers)
				for r := 0; r < readers; r++ {
					wg.Add(1)
					go func(r int) {
						defer wg.Done()
						<-start
						for {
							i := int(next.Add(1)) - 1
							if i >= b.N {
								return
							}
							if err := read(i); err != nil {
								errs[r] = err
								return
							}
						}
					}(r)
				}
				b.ResetTimer()
				close(start)
				wg.Wait()
				b.StopTimer()
				close(done)
				<-writerDone
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "reads/s")
				b.ReportMetric(float64(wrote.Load())/b.Elapsed().Seconds(), "writes/s")
				b.ReportMetric(float64(m.PhaseMean(PhaseQuery))/1e3, "query-us")
				b.ReportMetric(float64(m.PhaseMean(PhaseSync))/1e3, "sync-us")
				b.ReportMetric(float64(m.PhaseMean(PhaseMaintain))/1e3, "maintain-us")
			})
		}
	}
}
