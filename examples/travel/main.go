// Travel: the paper's motivating scenario — a warehouse integrating flight
// and hotel information from several web travel agencies. One agency
// withdraws its customer table; a second change later removes a flight
// reservation column. The example shows the view surviving both changes
// and the maintenance metrics of routing data updates afterwards.
package main

import (
	"context"
	"fmt"
	"log"

	eve "repro"

	"repro/internal/scenario"
)

func main() {
	log.SetFlags(0)

	sp, err := scenario.TravelSpace(42)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := eve.New(eve.WithSpace(sp))
	if err != nil {
		log.Fatal(err)
	}

	view, err := sys.DefineView(context.Background(), scenario.AsiaCustomerESQL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Registered view ==")
	fmt.Println(eve.PrintView(view.Def))
	fmt.Printf("\nExtent: %d tuples\n", view.Extent.Card())

	// Change 1: Agency1 withdraws the Customer relation. The MKB knows
	// Agency2's Client replicates Customer's (Name, Address), so the view
	// survives by switching agencies — losing only the dispensable Phone.
	fmt.Println("\n== Change 1: delete-relation Customer ==")
	report(sys, eve.DeleteRelation("Customer"))
	fmt.Println("\nCurrent definition:")
	fmt.Println(eve.PrintView(view.Def))
	fmt.Printf("Extent: %d tuples, deceased=%v\n", view.Extent.Card(), view.Deceased)

	// Data keeps flowing: route an insert through incremental maintenance.
	metrics, err := sys.ApplyUpdate(context.Background(), eve.InsertTuple("FlightRes", eve.Tuple{
		eve.Str("Ahn"), eve.Str("Tokyo"), eve.Str("JL"), eve.Int(20260501),
	}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nRouted FlightRes insert through maintenance: %d messages, %d bytes, %d I/Os\n",
		metrics.Messages, metrics.Bytes, metrics.IO)
	fmt.Printf("Extent after update: %d tuples\n", view.Extent.Card())

	// Change 2: the booking destination column disappears from FlightRes.
	// The Dest condition is dispensable, so the view survives again —
	// albeit with a broader extent (all customers with any reservation).
	fmt.Println("\n== Change 2: delete-attribute FlightRes.Dest ==")
	report(sys, eve.DeleteAttribute("FlightRes", "Dest"))
	fmt.Println("\nFinal definition:")
	fmt.Println(eve.PrintView(view.Def))
	fmt.Printf("Extent: %d tuples, deceased=%v\n", view.Extent.Card(), view.Deceased)
	fmt.Println("\nSynchronization history:")
	for _, h := range view.History {
		fmt.Println("  " + h)
	}
}

func report(sys *eve.System, c eve.Change) {
	results, err := sys.ApplyChange(context.Background(), c)
	if err != nil {
		log.Fatal(err)
	}
	for _, res := range results {
		switch {
		case res.Deceased:
			fmt.Printf("view %s: deceased\n", res.ViewName)
		case res.Ranking == nil:
			fmt.Printf("view %s: unaffected\n", res.ViewName)
		default:
			fmt.Printf("view %s: %d legal rewriting(s)\n", res.ViewName, len(res.Ranking.Candidates))
			fmt.Print(res.Ranking.Table(nil))
		}
	}
}
