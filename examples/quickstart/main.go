// Quickstart: build a tiny two-source information space, define an E-SQL
// view with evolution preferences, delete a base relation, and let the EVE
// system rank the legal rewritings and adopt the best one.
package main

import (
	"context"
	"fmt"
	"log"

	eve "repro"
)

func main() {
	log.SetFlags(0)

	// 1. Build the information space: two sources, two relations that are
	//    replicas of each other on their key column.
	sp := eve.NewSpace()
	mustAdd := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	_, err := sp.AddSource("IS1")
	mustAdd(err)
	_, err = sp.AddSource("IS2")
	mustAdd(err)

	parts := eve.NewRelation("Parts", eve.NewSchema(
		eve.Attribute{Name: "PartID", Type: eve.TypeInt},
		eve.Attribute{Name: "Name", Type: eve.TypeString},
		eve.Attribute{Name: "Price", Type: eve.TypeInt},
	))
	mirror := eve.NewRelation("PartsMirror", eve.NewSchema(
		eve.Attribute{Name: "ID", Type: eve.TypeInt},
		eve.Attribute{Name: "PName", Type: eve.TypeString},
	))
	for i, name := range []string{"bolt", "nut", "washer", "gear", "axle"} {
		id := eve.Int(int64(i + 1))
		mustAdd(parts.Insert(eve.Tuple{id, eve.Str(name), eve.Int(int64(10 * (i + 1)))}))
		mustAdd(mirror.Insert(eve.Tuple{id, eve.Str(name)}))
	}
	mustAdd(sp.AddRelation("IS1", parts))
	mustAdd(sp.AddRelation("IS2", mirror))

	// 2. Record meta knowledge: PartsMirror replicates Parts' (PartID,
	//    Name) projection exactly.
	mustAdd(sp.MKB().AddPCConstraint(eve.PCConstraint{
		Left:  eve.Fragment{Rel: eve.RelRef{Rel: "Parts"}, Attrs: []string{"PartID", "Name"}},
		Right: eve.Fragment{Rel: eve.RelRef{Rel: "PartsMirror"}, Attrs: []string{"ID", "PName"}},
		Rel:   eve.Equal,
	}))

	// 3. Assemble the system over the space with the v2 options API — a
	//    metrics observer counts pipeline events as they happen.
	metrics := &eve.MetricsObserver{}
	sys, err := eve.New(eve.WithSpace(sp), eve.WithObserver(metrics))
	if err != nil {
		log.Fatal(err)
	}

	// 4. Define an evolvable view: Price is dispensable, the rest
	//    replaceable, and the relation itself may be replaced.
	view, err := sys.DefineView(context.Background(), `
		CREATE VIEW Catalog (VE = ~) AS
		SELECT P.PartID (AR = true), P.Name (AR = true), P.Price (AD = true)
		FROM Parts P (RR = true)
		WHERE (P.Price > 15) (CD = true)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Initial view:")
	fmt.Println(eve.PrintView(view.Def))
	fmt.Printf("\nExtent: %d tuples\n\n", view.Extent.Card())

	// 5. The source withdraws the Parts relation. EVE synchronizes.
	results, err := sys.ApplyChange(context.Background(), eve.DeleteRelation("Parts"))
	if err != nil {
		log.Fatal(err)
	}
	for _, res := range results {
		if res.Deceased {
			fmt.Println("view deceased — no legal rewriting")
			continue
		}
		if res.Ranking == nil {
			continue
		}
		fmt.Printf("QC ranking over %d legal rewriting(s):\n%s\n",
			len(res.Ranking.Candidates), res.Ranking.Table(nil))
	}
	fmt.Println("Adopted definition:")
	fmt.Println(eve.PrintView(view.Def))
	fmt.Printf("\nNew extent: %d tuples (was built from the replica)\n", view.Extent.Card())
	fmt.Printf("\nObserved: %d change(s), %d search(es), %d adoption(s), %d decease(s)\n",
		metrics.Changes(), metrics.Syncs(), metrics.Adopts(), metrics.Deceases())
}
