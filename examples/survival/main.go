// Survival: a walkthrough of Experiment 1's life-span study. A view over
// R(A, B) faces a stream of capability changes; the w1/w2 weighting of the
// QC-Model's interface quality decides whether EVE keeps the replaceable
// attribute A (surviving further changes through the replicas S and T) or
// the non-replaceable attribute B (dying at the next change).
package main

import (
	"context"
	"fmt"
	"log"

	eve "repro"

	"repro/internal/scenario"
)

func main() {
	log.SetFlags(0)
	for _, weights := range [][2]float64{{0.7, 0.3}, {0.3, 0.7}} {
		run(weights[0], weights[1])
		fmt.Println()
	}
}

func run(w1, w2 float64) {
	fmt.Printf("== Weights w1=%.1f (replaceable), w2=%.1f (non-replaceable) ==\n", w1, w2)
	sp, err := scenario.Exp1Space(1)
	if err != nil {
		log.Fatal(err)
	}
	// Experiment 1 studies the interface dimension in isolation.
	t := eve.DefaultTradeoff()
	t.W1, t.W2 = w1, w2
	t.RhoAttr, t.RhoExt = 1, 0
	t.RhoQuality, t.RhoCost = 1, 0
	sys, err := eve.New(eve.WithSpace(sp), eve.WithTradeoff(t))
	if err != nil {
		log.Fatal(err)
	}

	view, err := sys.RegisterView(context.Background(), scenario.Exp1View())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(eve.PrintView(view.Def))

	changes := []eve.Change{
		eve.DeleteAttribute("R", "A"),
	}
	survived := 0
	for step := 0; ; step++ {
		var c eve.Change
		if step < len(changes) {
			c = changes[step]
		} else {
			// Keep deleting whatever relation the view currently uses.
			if view.Deceased || len(view.Def.From) == 0 {
				break
			}
			c = eve.DeleteRelation(view.Def.From[0].Rel)
		}
		fmt.Printf("\n-- change %d: %s --\n", step+1, c)
		results, err := sys.ApplyChange(context.Background(), c)
		if err != nil {
			log.Fatal(err)
		}
		for _, res := range results {
			if res.Ranking != nil {
				fmt.Printf("%d legal rewriting(s); chosen QC=%.3f\n",
					len(res.Ranking.Candidates), res.Chosen.QC)
			}
		}
		if view.Deceased {
			fmt.Println("view DECEASED")
			break
		}
		survived++
		fmt.Println("view survived as:")
		fmt.Println(eve.PrintView(view.Def))
	}
	fmt.Printf("\nLifespan: %d change(s) survived\n", survived)
}
