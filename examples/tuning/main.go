// Tuning: sweeps the QC-Model's trade-off parameters over Experiment 4's
// substitute-cardinality scenario and shows how the winning rewriting flips
// from the size-matched substitute (quality-dominated regime) to the
// smallest substitute (cost-dominated regime) as ρ_cost grows — the
// crossover behaviour of Figure 15.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/space"
	"repro/internal/synchronize"
)

func main() {
	log.SetFlags(0)

	sp, err := scenario.Exp4Space(1, false)
	if err != nil {
		log.Fatal(err)
	}
	orig := scenario.Exp4View()
	preCards := map[string]int{"R1": 400, "R2": 4000}

	sy := synchronize.New(sp.MKB())
	rws, err := sy.Synchronize(context.Background(), orig, space.Change{Kind: space.DeleteRelation, Rel: "R2"})
	if err != nil {
		log.Fatal(err)
	}

	est := core.NewEstimator(sp.MKB())
	cm := core.DefaultCostModel()

	fmt.Println("ρ_quality sweep over Experiment 4's five substitutes (S1..S5):")
	fmt.Printf("%10s %8s    %s\n", "ρ_quality", "winner", "QC scores S1..S5")
	for rq := 1.0; rq >= 0.0; rq -= 0.1 {
		t := core.DefaultTradeoff()
		t.RhoQuality, t.RhoCost = rq, 1-rq

		var cands []*core.Candidate
		for _, rw := range rws {
			repl := rw.Replacements["R2"]
			if repl == "" {
				continue
			}
			card := sp.MKB().Relation(repl).Card
			cands = append(cands, &core.Candidate{
				Rewriting: rw,
				Sizes:     est.Sizes(orig, rw, preCards),
				Scenario: core.UpdateScenario{
					UpdatedTupleSize: 100,
					Sites: []core.SiteLoad{
						{},
						{Relations: []core.RelStats{{Card: card, TupleSize: 100, Selectivity: 0.5}}},
					},
				},
			})
		}
		ranking, err := core.Rank(orig, cands, t, cm)
		if err != nil {
			log.Fatal(err)
		}
		// Report scores in S1..S5 order.
		scores := map[string]float64{}
		for _, c := range ranking.Candidates {
			scores[c.Rewriting.Replacements["R2"]] = c.QC
		}
		winner := ranking.Best().Rewriting.Replacements["R2"]
		line := ""
		for _, s := range []string{"S1", "S2", "S3", "S4", "S5"} {
			line += fmt.Sprintf(" %.4f", scores[s])
		}
		fmt.Printf("%10.1f %8s   %s\n", rq, winner, line)
	}

	fmt.Println("\nReading: with quality weighted ≥0.9 the size-matched S3 wins;")
	fmt.Println("as cost gains weight the smallest substitute S1 takes over,")
	fmt.Println("exactly the Figure 15 crossover.")
}
