// Command eveload is the load generator for eved: M concurrent clients
// drive a configurable read/write mix of GET /query and POST /update
// against a running daemon and report throughput plus latency quantiles
// per operation class — the measurement half of the scale-out serving
// story (BENCH_scale.json is its in-process twin).
//
// Usage:
//
//	go run ./cmd/eveload [-url http://localhost:8080] [-clients 16]
//	    [-duration 10s] [-write-ratio 0.05] [-seed 1] [-json]
//	    [-queries "SELECT A1 FROM W1;SELECT A2 FROM W2"] [-update-rel W1]
//	    [-update-width 7]
//
// Each client rotates through the query list with a client-specific offset
// and replaces the trailing constant of `> N` predicates with a rotating
// value, so consecutive requests do not trivially hit the same cached
// route. Writes insert fresh tuples into -update-rel (arity -update-width,
// first value unique per client×iteration, so inserts never collide).
// eveload waits for /readyz before opening traffic and exits non-zero when
// any request fails.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

func main() {
	cfg := loadConfig{}
	flag.StringVar(&cfg.base, "url", "http://localhost:8080", "eved base URL")
	flag.IntVar(&cfg.clients, "clients", 16, "concurrent client goroutines")
	flag.DurationVar(&cfg.duration, "duration", 10*time.Second, "measurement window")
	flag.Float64Var(&cfg.writeRatio, "write-ratio", 0.05, "fraction of requests that are /update batches")
	flag.Int64Var(&cfg.seed, "seed", 1, "workload seed")
	queries := flag.String("queries",
		"SELECT A1, A2 FROM W1 WHERE A1 > 10;SELECT A3 FROM W2 WHERE A3 > 40;SELECT A1 FROM W2;SELECT A2, A4 FROM W1 WHERE A2 > 75",
		"semicolon-separated query rotation")
	flag.StringVar(&cfg.updateRel, "update-rel", "W1", "relation /update batches insert into")
	flag.IntVar(&cfg.updateWidth, "update-width", 7, "tuple arity for /update inserts")
	asJSON := flag.Bool("json", false, "emit the report as JSON")
	flag.Parse()
	cfg.queries = strings.Split(*queries, ";")

	if err := waitReady(cfg.base, 30*time.Second); err != nil {
		log.Fatal(err)
	}
	rep, err := run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Print(rep)
	}
	if rep.Reads.Errors+rep.Writes.Errors > 0 {
		os.Exit(1)
	}
}

// loadConfig is one load run's shape.
type loadConfig struct {
	base        string
	clients     int
	duration    time.Duration
	writeRatio  float64
	seed        int64
	queries     []string
	updateRel   string
	updateWidth int
}

// opStats aggregates one operation class of the report.
type opStats struct {
	Requests  int     `json:"requests"`
	Errors    int     `json:"errors"`
	Rps       float64 `json:"rps"`
	P50Millis float64 `json:"p50ms"`
	P95Millis float64 `json:"p95ms"`
	P99Millis float64 `json:"p99ms"`
}

// report is the full run summary.
type report struct {
	Clients    int     `json:"clients"`
	Seconds    float64 `json:"seconds"`
	WriteRatio float64 `json:"writeRatio"`
	Reads      opStats `json:"reads"`
	Writes     opStats `json:"writes"`
}

// String renders the human-readable report.
func (r report) String() string {
	line := func(name string, s opStats) string {
		return fmt.Sprintf("%-7s %8d req  %8.1f req/s  %4d err  p50 %7.2fms  p95 %7.2fms  p99 %7.2fms\n",
			name, s.Requests, s.Rps, s.Errors, s.P50Millis, s.P95Millis, s.P99Millis)
	}
	return fmt.Sprintf("eveload: %d clients, %.1fs, write ratio %.2f\n", r.Clients, r.Seconds, r.WriteRatio) +
		line("reads", r.Reads) + line("writes", r.Writes)
}

// waitReady polls /readyz until the daemon reports ready or the budget runs
// out — the load run must not measure startup 503s.
func waitReady(base string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("eveload: %s never became ready: %w", base, err)
			}
			return fmt.Errorf("eveload: %s never became ready", base)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// sample is one timed request outcome.
type sample struct {
	d  time.Duration
	ok bool
}

// run executes the load: cfg.clients goroutines issue the read/write mix
// for cfg.duration, then per-class latencies fold into the report.
func run(cfg loadConfig) (report, error) {
	if cfg.clients < 1 || len(cfg.queries) == 0 {
		return report{}, fmt.Errorf("eveload: need at least one client and one query")
	}
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		reads  []sample
		writes []sample
	)
	stop := time.Now().Add(cfg.duration)
	start := time.Now()
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(c)))
			client := &http.Client{Timeout: 30 * time.Second}
			var myReads, myWrites []sample
			for i := 0; time.Now().Before(stop); i++ {
				if rng.Float64() < cfg.writeRatio {
					myWrites = append(myWrites, doWrite(client, cfg, c, i))
				} else {
					myReads = append(myReads, doRead(client, cfg, rng, c, i))
				}
			}
			mu.Lock()
			reads = append(reads, myReads...)
			writes = append(writes, myWrites...)
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	return report{
		Clients:    cfg.clients,
		Seconds:    elapsed,
		WriteRatio: cfg.writeRatio,
		Reads:      fold(reads, elapsed),
		Writes:     fold(writes, elapsed),
	}, nil
}

// doRead times one GET /query with a rotated query and rotated constant.
func doRead(client *http.Client, cfg loadConfig, rng *rand.Rand, c, i int) sample {
	q := cfg.queries[(c+i)%len(cfg.queries)]
	// Rotate the trailing "> N" constant so consecutive requests differ.
	if j := strings.LastIndex(q, "> "); j >= 0 {
		q = fmt.Sprintf("%s> %d", q[:j], rng.Intn(200))
	}
	start := time.Now()
	resp, err := client.Get(cfg.base + "/query?q=" + url.QueryEscape(q))
	d := time.Since(start)
	if err != nil {
		return sample{d: d}
	}
	resp.Body.Close()
	return sample{d: d, ok: resp.StatusCode == http.StatusOK}
}

// doWrite times one POST /update inserting a fresh tuple.
func doWrite(client *http.Client, cfg loadConfig, c, i int) sample {
	vals := make([]string, cfg.updateWidth)
	vals[0] = fmt.Sprint(1_000_000 + c*1_000_000 + i) // unique key per client×iter
	for k := 1; k < cfg.updateWidth; k++ {
		vals[k] = fmt.Sprint((i + k) % 500)
	}
	body := fmt.Sprintf(`{"updates": [{"op": "insert", "rel": %q, "tuple": [%s]}]}`,
		cfg.updateRel, strings.Join(vals, ", "))
	start := time.Now()
	resp, err := client.Post(cfg.base+"/update", "application/json", bytes.NewReader([]byte(body)))
	d := time.Since(start)
	if err != nil {
		return sample{d: d}
	}
	resp.Body.Close()
	return sample{d: d, ok: resp.StatusCode == http.StatusOK}
}

// fold aggregates one class's samples into counts, throughput, and p50/95/99.
func fold(samples []sample, seconds float64) opStats {
	s := opStats{Requests: len(samples)}
	if len(samples) == 0 {
		return s
	}
	ds := make([]time.Duration, 0, len(samples))
	for _, x := range samples {
		if !x.ok {
			s.Errors++
		}
		ds = append(ds, x.d)
	}
	sort.Slice(ds, func(a, b int) bool { return ds[a] < ds[b] })
	pct := func(p float64) float64 {
		i := int(p * float64(len(ds)-1))
		return float64(ds[i]) / float64(time.Millisecond)
	}
	s.Rps = float64(len(samples)) / seconds
	s.P50Millis, s.P95Millis, s.P99Millis = pct(0.50), pct(0.95), pct(0.99)
	return s
}
