package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// stubServer mimics the eved surface: /readyz flips ready after a delay,
// /query answers 200 (400 for empty q), /update counts batches.
func stubServer(t *testing.T, readyAfter time.Duration) (*httptest.Server, *atomic.Int64, *atomic.Int64) {
	t.Helper()
	var readsN, writesN atomic.Int64
	startAt := time.Now().Add(readyAfter)
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if time.Now().Before(startAt) {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("q") == "" {
			http.Error(w, "missing q", http.StatusBadRequest)
			return
		}
		readsN.Add(1)
		w.Write([]byte(`{"route":"view-extent","checksum":"00"}`)) //nolint:errcheck
	})
	mux.HandleFunc("/update", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Updates []struct {
				Op    string  `json:"op"`
				Rel   string  `json:"rel"`
				Tuple []int64 `json:"tuple"`
			} `json:"updates"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || len(req.Updates) == 0 {
			http.Error(w, "bad batch", http.StatusBadRequest)
			return
		}
		if req.Updates[0].Rel != "W1" || len(req.Updates[0].Tuple) != 7 {
			http.Error(w, "bad tuple shape", http.StatusBadRequest)
			return
		}
		writesN.Add(1)
		w.Write([]byte(`{"applied":1}`)) //nolint:errcheck
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, &readsN, &writesN
}

// TestRunMixedLoad drives the generator against the stub and checks the
// report: both classes exercised, counts match the server's, throughput and
// quantiles populated, zero errors.
func TestRunMixedLoad(t *testing.T) {
	srv, readsN, writesN := stubServer(t, 0)
	cfg := loadConfig{
		base: srv.URL, clients: 4, duration: 300 * time.Millisecond,
		writeRatio: 0.3, seed: 7,
		queries:   []string{"SELECT A1 FROM W1 WHERE A1 > 10", "SELECT A2 FROM W2"},
		updateRel: "W1", updateWidth: 7,
	}
	rep, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reads.Requests == 0 || rep.Writes.Requests == 0 {
		t.Fatalf("both classes must be exercised: %+v", rep)
	}
	if rep.Reads.Errors != 0 || rep.Writes.Errors != 0 {
		t.Fatalf("errors against well-formed stub: %+v", rep)
	}
	if int64(rep.Reads.Requests) != readsN.Load() || int64(rep.Writes.Requests) != writesN.Load() {
		t.Fatalf("report counts (%d/%d) != server counts (%d/%d)",
			rep.Reads.Requests, rep.Writes.Requests, readsN.Load(), writesN.Load())
	}
	if rep.Reads.Rps <= 0 || rep.Reads.P50Millis < 0 || rep.Reads.P99Millis < rep.Reads.P50Millis {
		t.Fatalf("degenerate read stats: %+v", rep.Reads)
	}
	out := rep.String()
	if !strings.Contains(out, "reads") || !strings.Contains(out, "writes") || !strings.Contains(out, "p99") {
		t.Fatalf("report rendering: %q", out)
	}
}

// TestRunCountsFailures: a server that 500s every query must surface as
// per-class error counts, the generator's non-zero-exit signal.
func TestRunCountsFailures(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	rep, err := run(loadConfig{
		base: srv.URL, clients: 2, duration: 100 * time.Millisecond,
		writeRatio: 0, seed: 1, queries: []string{"SELECT A1 FROM W1"},
		updateRel: "W1", updateWidth: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reads.Requests == 0 || rep.Reads.Errors != rep.Reads.Requests {
		t.Fatalf("want every request counted as an error: %+v", rep.Reads)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := run(loadConfig{clients: 0}); err == nil {
		t.Error("run with zero clients accepted")
	}
	if _, err := run(loadConfig{clients: 1}); err == nil {
		t.Error("run with no queries accepted")
	}
}

// TestWaitReady blocks until the stub flips ready, and errors on a dead
// endpoint within the budget.
func TestWaitReady(t *testing.T) {
	srv, _, _ := stubServer(t, 250*time.Millisecond)
	start := time.Now()
	if err := waitReady(srv.URL, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 200*time.Millisecond {
		t.Error("waitReady returned before the stub was ready")
	}
	if err := waitReady("http://127.0.0.1:1", 200*time.Millisecond); err == nil {
		t.Error("waitReady against dead endpoint succeeded")
	}
}
