// Command experiments regenerates every table and figure from the paper's
// evaluation section (Section 7) using the analytic QC-Model, printing the
// same rows and series the paper reports.
//
// Usage:
//
//	experiments            # run everything
//	experiments -exp 4     # run one experiment (1..6; 6 = heuristics)
//	experiments -empirical # add the empirical (materialized-extent) checks
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/scenario"
)

func main() {
	log.SetFlags(0)
	exp := flag.Int("exp", 0, "experiment to run (1-7; 6 = heuristics, 7 = analytic-vs-measured cross-validation); 0 = all")
	empirical := flag.Bool("empirical", false, "also run empirical (materialized-extent) validation for experiment 4")
	charts := flag.Bool("charts", false, "render the figures as ASCII charts in addition to the data tables")
	flag.Parse()

	run := func(n int) bool { return *exp == 0 || *exp == n }

	if run(1) {
		r, err := experiments.RunExp1(context.Background())
		fail(err)
		fmt.Println(r)
	}
	if run(2) {
		r := experiments.RunExp2(scenario.DefaultParams(), core.DefaultCostModel())
		fmt.Println(r)
		if *charts {
			fmt.Println(r.Figure())
		}
	}
	if run(3) {
		for _, js := range []float64{0.001, 0.0022, 0.005} {
			r := experiments.RunExp3(scenario.DefaultParams(), js, core.DefaultCostModel())
			fmt.Println(r)
			if *charts {
				fmt.Println(r.Figure())
			}
		}
	}
	if run(4) {
		r, err := experiments.RunExp4(context.Background())
		fail(err)
		fmt.Println(r)
		if *charts {
			fmt.Println(r.Figure())
		}
		if *empirical {
			rows, err := experiments.Exp4Empirical(context.Background(), 1)
			fail(err)
			fmt.Println("Experiment 4 — empirical divergences from materialized extents")
			fmt.Printf("%-6s %8s %8s %8s\n", "rw", "DDattr", "DDext", "DD")
			for _, row := range rows {
				fmt.Printf("%-6s %8.4f %8.4f %8.4f\n", row.Name, row.DDAttr, row.DDExt, row.DD)
			}
			fmt.Println()
		}
	}
	if run(5) {
		r, err := experiments.RunExp5(context.Background())
		fail(err)
		fmt.Println(r)
		if *charts {
			fmt.Println(r.Figure())
		}
	}
	if run(6) {
		r, err := experiments.RunHeuristics(context.Background())
		fail(err)
		fmt.Println(r)
	}
	if run(7) {
		r, err := experiments.RunCrossValidation(context.Background(), 1, 20)
		fail(err)
		fmt.Println(r)
	}
}

func fail(err error) {
	if err != nil {
		log.Println(err)
		os.Exit(1)
	}
}
