// Command eve is an interactive demonstration of the EVE system: it builds
// the travel-agency scenario from the paper's introduction, defines the
// Asia-Customer view, applies capability changes, and shows the QC-ranked
// legal rewritings the system chooses among.
//
// Usage:
//
//	eve                  # run the scripted travel demo
//	eve -change X        # which change to demo: customer | flightres | attr
//	eve -verbose         # print every rewriting, not just the winner
//	eve -load space.json # run against a saved information space
//	eve -dump space.json # save the (pre-change) space and exit
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"repro/internal/esql"
	"repro/internal/persist"
	"repro/internal/scenario"
	"repro/internal/space"
	"repro/internal/warehouse"
)

func main() {
	log.SetFlags(0)
	// The v2 pipeline is cancellable end to end: ^C aborts the pass with
	// ctx.Err(), leaving the warehouse at the last landed change.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()
	changeFlag := flag.String("change", "customer", "capability change to demo: customer | flightres | attr")
	verbose := flag.Bool("verbose", false, "print all ranked rewritings")
	loadPath := flag.String("load", "", "load the information space from a JSON file instead of the built-in travel scenario")
	dumpPath := flag.String("dump", "", "write the information space to a JSON file and exit")
	flag.Parse()

	var sp *space.Space
	var err error
	if *loadPath != "" {
		sp, err = persist.LoadFile(*loadPath)
	} else {
		sp, err = scenario.TravelSpace(7)
	}
	fail(err)
	if *dumpPath != "" {
		fail(persist.SaveFile(*dumpPath, sp))
		fmt.Printf("information space written to %s\n", *dumpPath)
		return
	}
	wh := warehouse.New(sp)

	view, err := wh.DefineView(context.Background(), scenario.AsiaCustomerESQL)
	fail(err)
	fmt.Println("Registered view:")
	fmt.Println(esql.Print(view.Def))
	fmt.Printf("\nInitial extent: %d tuples\n\n", view.Extent.Card())

	var change space.Change
	switch *changeFlag {
	case "customer":
		change = space.Change{Kind: space.DeleteRelation, Rel: "Customer"}
	case "flightres":
		change = space.Change{Kind: space.DeleteRelation, Rel: "FlightRes"}
	case "attr":
		change = space.Change{Kind: space.DeleteAttribute, Rel: "Customer", Attr: "Phone"}
	default:
		log.Printf("unknown -change %q (want customer | flightres | attr)", *changeFlag)
		os.Exit(2)
	}

	fmt.Printf("Applying capability change: %s\n\n", change)
	results, err := wh.ApplyChange(ctx, change)
	fail(err)

	for _, res := range results {
		if res.Deceased {
			fmt.Printf("view %s: no legal rewriting — view deceased\n", res.ViewName)
			continue
		}
		if res.Ranking == nil {
			fmt.Printf("view %s: unaffected\n", res.ViewName)
			continue
		}
		fmt.Printf("view %s: %d legal rewriting(s); QC ranking:\n\n", res.ViewName, len(res.Ranking.Candidates))
		fmt.Println(res.Ranking.Table(nil))
		if *verbose {
			for i, c := range res.Ranking.Candidates {
				fmt.Printf("--- rank %d (QC=%.4f, %s) ---\n%s\n\n",
					i+1, c.QC, c.Rewriting.Note, esql.Print(c.Rewriting.View))
			}
		}
		fmt.Println("Adopted definition:")
		fmt.Println(esql.Print(view.Def))
		fmt.Printf("\nNew extent: %d tuples\n", view.Extent.Card())
	}
}

func fail(err error) {
	if err != nil {
		log.Println(err)
		os.Exit(1)
	}
}
