// Command benchjson converts `go test -bench` output into a JSON document.
// It reads the benchmark run from stdin, echoes it unchanged to stdout (so
// it drops into a pipeline without hiding the run), and writes the parsed
// results to the file named by -out:
//
//	go test -bench=BenchmarkServeConcurrent . | go run ./cmd/benchjson -out BENCH_serve.json
//
// Every standard benchmark line — name, iteration count, and the
// value/unit metric pairs (ns/op, custom b.ReportMetric units like
// reads/s, B/op, allocs/op) — becomes one entry; context lines (goos, cpu,
// PASS, ...) are carried in the header field. The Makefile's bench-serve
// target uses it to record the serving-path benchmark grid so a regression
// is visible as a diff, and CI smoke-runs the same pipeline so the serving
// path can never silently stop building.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name including the sub-benchmark path, with
	// the trailing -N GOMAXPROCS marker stripped so names stay stable
	// across machines, e.g. "BenchmarkServeConcurrent/mode=epoch/readers=16".
	Name string `json:"name"`
	// Iters is the measured iteration count (the N in N ns/op).
	Iters int64 `json:"iters"`
	// Metrics maps unit to value for every "value unit" pair on the line.
	Metrics map[string]float64 `json:"metrics"`
}

// Doc is the JSON document benchjson writes.
type Doc struct {
	// Header carries the run's context lines (goos, goarch, pkg, cpu).
	Header []string `json:"header"`
	// Benchmarks are the parsed result lines in input order.
	Benchmarks []Result `json:"benchmarks"`
}

// benchLine matches "BenchmarkX/sub-8   12345   67.8 ns/op   90 reads/s".
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

func main() {
	out := flag.String("out", "", "file to write the JSON document to (required)")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -out is required")
		os.Exit(2)
	}

	doc := Doc{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if m := benchLine.FindStringSubmatch(line); m != nil {
			iters, err := strconv.ParseInt(m[2], 10, 64)
			if err != nil {
				continue
			}
			doc.Benchmarks = append(doc.Benchmarks, Result{
				Name:    stripMaxprocs(m[1]),
				Iters:   iters,
				Metrics: parseMetrics(m[3]),
			})
			continue
		}
		switch {
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"),
			strings.HasPrefix(line, "cpu:"):
			doc.Header = append(doc.Header, line)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}

	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// stripMaxprocs removes the trailing -N GOMAXPROCS marker from a benchmark
// name (left unchanged when absent, e.g. on GOMAXPROCS=1 machines where go
// test omits it).
func stripMaxprocs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// parseMetrics splits the tail of a benchmark line into unit -> value.
func parseMetrics(tail string) map[string]float64 {
	fields := strings.Fields(tail)
	out := make(map[string]float64, len(fields)/2)
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		out[fields[i+1]] = v
	}
	return out
}
