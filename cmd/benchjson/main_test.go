package main

import "testing"

func TestBenchLineParsing(t *testing.T) {
	m := benchLine.FindStringSubmatch("BenchmarkServeConcurrent/mode=epoch/readers=16-8   \t 7306026\t       139.0 ns/op\t   7196811 reads/s")
	if m == nil {
		t.Fatal("benchmark line did not match")
	}
	if got := m[1]; got != "BenchmarkServeConcurrent/mode=epoch/readers=16-8" {
		t.Errorf("name = %q", got)
	}
	metrics := parseMetrics(m[3])
	if metrics["ns/op"] != 139.0 {
		t.Errorf("ns/op = %v", metrics["ns/op"])
	}
	if metrics["reads/s"] != 7196811 {
		t.Errorf("reads/s = %v", metrics["reads/s"])
	}
}

func TestStripMaxprocs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkX/readers=16-8":     "BenchmarkX/readers=16",
		"BenchmarkX":                  "BenchmarkX",
		"BenchmarkX/mode=no-cache":    "BenchmarkX/mode=no-cache",
		"BenchmarkX/mode=no-cache-4":  "BenchmarkX/mode=no-cache",
		"BenchmarkServeConcurrent-16": "BenchmarkServeConcurrent",
	}
	for in, want := range cases {
		if got := stripMaxprocs(in); got != want {
			t.Errorf("stripMaxprocs(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestNonBenchLinesIgnored(t *testing.T) {
	for _, line := range []string{"goos: linux", "PASS", "ok  \trepro\t3.3s", ""} {
		if benchLine.MatchString(line) {
			t.Errorf("%q should not parse as a benchmark line", line)
		}
	}
}
