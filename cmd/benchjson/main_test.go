package main

import "testing"

func TestBenchLineParsing(t *testing.T) {
	m := benchLine.FindStringSubmatch("BenchmarkServeConcurrent/mode=epoch/readers=16-8   \t 7306026\t       139.0 ns/op\t   7196811 reads/s")
	if m == nil {
		t.Fatal("benchmark line did not match")
	}
	if got := m[1]; got != "BenchmarkServeConcurrent/mode=epoch/readers=16-8" {
		t.Errorf("name = %q", got)
	}
	metrics := parseMetrics(m[3])
	if metrics["ns/op"] != 139.0 {
		t.Errorf("ns/op = %v", metrics["ns/op"])
	}
	if metrics["reads/s"] != 7196811 {
		t.Errorf("reads/s = %v", metrics["reads/s"])
	}
}

// TestAllocAndThroughputMetrics pins the -benchmem/SetBytes line shape the
// columnar benchmarks emit: MB/s, B/op, and allocs/op must all land in the
// metric map alongside ns/op and custom units.
func TestAllocAndThroughputMetrics(t *testing.T) {
	m := benchLine.FindStringSubmatch("BenchmarkColumnarGrid/path=columnar/chunk=4096/card=100000-8 \t      42\t  27487210 ns/op\t 116.42 MB/s\t    100000 result-tuples\t17082208 B/op\t      61 allocs/op")
	if m == nil {
		t.Fatal("benchmark line did not match")
	}
	metrics := parseMetrics(m[3])
	want := map[string]float64{
		"ns/op":         27487210,
		"MB/s":          116.42,
		"result-tuples": 100000,
		"B/op":          17082208,
		"allocs/op":     61,
	}
	for unit, v := range want {
		if metrics[unit] != v {
			t.Errorf("%s = %v, want %v", unit, metrics[unit], v)
		}
	}
}

func TestStripMaxprocs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkX/readers=16-8":     "BenchmarkX/readers=16",
		"BenchmarkX":                  "BenchmarkX",
		"BenchmarkX/mode=no-cache":    "BenchmarkX/mode=no-cache",
		"BenchmarkX/mode=no-cache-4":  "BenchmarkX/mode=no-cache",
		"BenchmarkServeConcurrent-16": "BenchmarkServeConcurrent",
	}
	for in, want := range cases {
		if got := stripMaxprocs(in); got != want {
			t.Errorf("stripMaxprocs(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestNonBenchLinesIgnored(t *testing.T) {
	for _, line := range []string{"goos: linux", "PASS", "ok  \trepro\t3.3s", ""} {
		if benchLine.MatchString(line) {
			t.Errorf("%q should not parse as a benchmark line", line)
		}
	}
}
