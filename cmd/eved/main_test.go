package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestHandlerServesDuringChurn drives the eved handler with httptest while
// the churn stream applies, checking that every endpoint answers from a
// coherent version.
func TestHandlerServesDuringChurn(t *testing.T) {
	sys, h, err := buildSystem(30, 7)
	if err != nil {
		t.Fatal(err)
	}
	var applied atomic.Int64
	var writerMu sync.Mutex
	srv := httptest.NewServer(newHandler(sys, &writerMu, &applied, len(h.Changes)))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	// Serve before, during, and after churn.
	checkAll := func() {
		code, body := get("/")
		if code != 200 || !strings.Contains(body, "versionSeq") {
			t.Fatalf("/ = %d %q", code, body)
		}
		code, body = get("/views")
		if code != 200 || !strings.Contains(body, "views") {
			t.Fatalf("/views = %d %q", code, body)
		}
		var doc struct {
			Views []struct {
				Name string `json:"name"`
			} `json:"views"`
		}
		if err := json.Unmarshal([]byte(body), &doc); err != nil {
			t.Fatalf("/views JSON: %v in %q", err, body)
		}
		if len(doc.Views) == 0 {
			t.Fatal("/views returned no views")
		}
		code, body = get("/views/" + doc.Views[0].Name)
		if code != 200 || !strings.Contains(body, "version seq=") {
			t.Fatalf("/views/%s = %d %q", doc.Views[0].Name, code, body)
		}
	}
	checkAll()

	// Ad-hoc query routing: a well-formed SELECT answers with a route
	// classification and a result checksum; malformed requests are 400s.
	code, body := get("/query?q=" + url.QueryEscape("SELECT A1, A2 FROM W1 WHERE A1 > 3"))
	if code != 200 || !strings.Contains(body, `"route"`) || !strings.Contains(body, "checksum") {
		t.Fatalf("/query = %d %q", code, body)
	}
	var qdoc struct {
		Route    string     `json:"route"`
		Columns  []string   `json:"columns"`
		Rows     [][]string `json:"rows"`
		Checksum string     `json:"checksum"`
	}
	if err := json.Unmarshal([]byte(body), &qdoc); err != nil {
		t.Fatalf("/query JSON: %v in %q", err, body)
	}
	if len(qdoc.Columns) != 2 || qdoc.Columns[0] != "A1" || qdoc.Columns[1] != "A2" {
		t.Fatalf("/query columns = %v", qdoc.Columns)
	}
	if qdoc.Route == "" || len(qdoc.Checksum) != 16 {
		t.Fatalf("/query route = %q checksum = %q", qdoc.Route, qdoc.Checksum)
	}
	if code, _ := get("/query"); code != http.StatusBadRequest {
		t.Errorf("/query without q = %d, want 400", code)
	}
	if code, _ := get("/query?q=garbage"); code != http.StatusBadRequest {
		t.Errorf("/query?q=garbage = %d, want 400", code)
	}
	if code, _ := get("/query?q=" + url.QueryEscape("SELECT X FROM NoSuchRel")); code != http.StatusBadRequest {
		t.Errorf("/query over unknown relation = %d, want 400", code)
	}

	// Data updates: a POST /update batch maintains the views and publishes
	// a new version.
	post := func(body string) (int, string) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/update", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b)
	}
	seqBefore := sys.Snapshot().Seq()
	code, body = post(`{"updates": [
		{"op": "insert", "rel": "W1", "tuple": [9001, 1, 2, 3, 4, 5, 6]},
		{"op": "delete", "rel": "W1", "tuple": [9001, 1, 2, 3, 4, 5, 6]},
		{"op": "insert", "rel": "W1", "tuple": [9002, 1, 2, 3, 4, 5, 6]}
	]}`)
	if code != 200 || !strings.Contains(body, `"messages"`) {
		t.Fatalf("/update = %d %q", code, body)
	}
	var udoc struct {
		VersionSeq uint64 `json:"versionSeq"`
		Applied    int    `json:"applied"`
		Messages   int    `json:"messages"`
	}
	if err := json.Unmarshal([]byte(body), &udoc); err != nil {
		t.Fatalf("/update JSON: %v in %q", err, body)
	}
	if udoc.Applied != 3 || udoc.Messages != 3 || udoc.VersionSeq <= seqBefore {
		t.Fatalf("/update = %+v (seq before %d)", udoc, seqBefore)
	}
	if code, _ := post(`{"updates": [{"op": "insert", "rel": "NoSuchRel", "tuple": [1]}]}`); code != http.StatusBadRequest {
		t.Errorf("/update unknown relation = %d, want 400", code)
	}
	if code, _ := post(`{"updates": [{"op": "upsert", "rel": "W1", "tuple": [1]}]}`); code != http.StatusBadRequest {
		t.Errorf("/update unknown op = %d, want 400", code)
	}
	if code, _ := post(`garbage`); code != http.StatusBadRequest {
		t.Errorf("/update bad JSON = %d, want 400", code)
	}
	if code, _ := post(`{}`); code != http.StatusBadRequest {
		t.Errorf("/update empty batch = %d, want 400", code)
	}
	if code, _ := get("/update"); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /update = %d, want 405", code)
	}

	ses := sys.Session()
	for i, c := range h.Changes {
		if _, err := ses.Evolve(context.Background(), c); err != nil {
			t.Fatalf("change %d: %v", i, err)
		}
		applied.Add(1)
		if i%10 == 0 {
			checkAll()
		}
	}
	checkAll()

	if code, _ := get("/views/NoSuchView"); code != http.StatusNotFound {
		t.Errorf("/views/NoSuchView = %d, want 404", code)
	}
	if code, _ := get("/bogus"); code != http.StatusNotFound {
		t.Errorf("/bogus = %d, want 404", code)
	}
}
