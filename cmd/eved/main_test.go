package main

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	eve "repro"
)

func get(t *testing.T, base, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestHandlerServesDuringChurn drives the sharded eved handler with
// httptest while the churn stream applies, checking that every endpoint
// answers from a coherent composite snapshot.
func TestHandlerServesDuringChurn(t *testing.T) {
	d, h, err := buildDaemon(2, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.handler(5 * time.Second))
	defer srv.Close()

	if code, body := get(t, srv.URL, "/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, body := get(t, srv.URL, "/readyz"); code != 200 || !strings.Contains(body, "ready") {
		t.Fatalf("/readyz = %d %q", code, body)
	}

	// Serve before, during, and after churn.
	checkAll := func() {
		code, body := get(t, srv.URL, "/")
		if code != 200 || !strings.Contains(body, "versionSeqs") || !strings.Contains(body, `"shards": 2`) {
			t.Fatalf("/ = %d %q", code, body)
		}
		code, body = get(t, srv.URL, "/views")
		if code != 200 || !strings.Contains(body, "views") {
			t.Fatalf("/views = %d %q", code, body)
		}
		var doc struct {
			Views []struct {
				Name string `json:"name"`
			} `json:"views"`
		}
		if err := json.Unmarshal([]byte(body), &doc); err != nil {
			t.Fatalf("/views JSON: %v in %q", err, body)
		}
		if len(doc.Views) == 0 {
			t.Fatal("/views returned no views")
		}
		code, body = get(t, srv.URL, "/views/"+doc.Views[0].Name)
		if code != 200 || !strings.Contains(body, "version seqs=") {
			t.Fatalf("/views/%s = %d %q", doc.Views[0].Name, code, body)
		}
		code, body = get(t, srv.URL, "/relations")
		if code != 200 || !strings.Contains(body, "W1") {
			t.Fatalf("/relations = %d %q", code, body)
		}
	}
	checkAll()

	// Ad-hoc query routing: a well-formed SELECT answers with a route
	// classification and a result checksum; malformed requests are 400s.
	code, body := get(t, srv.URL, "/query?q="+url.QueryEscape("SELECT A1, A2 FROM W1 WHERE A1 > 3"))
	if code != 200 || !strings.Contains(body, `"route"`) || !strings.Contains(body, "checksum") {
		t.Fatalf("/query = %d %q", code, body)
	}
	var qdoc struct {
		Route    string     `json:"route"`
		Columns  []string   `json:"columns"`
		Rows     [][]string `json:"rows"`
		Checksum string     `json:"checksum"`
	}
	if err := json.Unmarshal([]byte(body), &qdoc); err != nil {
		t.Fatalf("/query JSON: %v in %q", err, body)
	}
	if len(qdoc.Columns) != 2 || qdoc.Columns[0] != "A1" || qdoc.Columns[1] != "A2" {
		t.Fatalf("/query columns = %v", qdoc.Columns)
	}
	if qdoc.Route == "" || len(qdoc.Checksum) != 16 {
		t.Fatalf("/query route = %q checksum = %q", qdoc.Route, qdoc.Checksum)
	}
	if code, _ := get(t, srv.URL, "/query"); code != http.StatusBadRequest {
		t.Errorf("/query without q = %d, want 400", code)
	}
	if code, _ := get(t, srv.URL, "/query?q=garbage"); code != http.StatusBadRequest {
		t.Errorf("/query?q=garbage = %d, want 400", code)
	}
	if code, _ := get(t, srv.URL, "/query?q="+url.QueryEscape("SELECT X FROM NoSuchRel")); code != http.StatusBadRequest {
		t.Errorf("/query over unknown relation = %d, want 400", code)
	}

	// Data updates: a POST /update batch maintains every shard's views and
	// publishes new per-shard versions.
	post := func(body string) (int, string) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/update", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b)
	}
	seqsBefore := d.cl.Snapshot().Seqs()
	code, body = post(`{"updates": [
		{"op": "insert", "rel": "W1", "tuple": [9001, 1, 2, 3, 4, 5, 6]},
		{"op": "delete", "rel": "W1", "tuple": [9001, 1, 2, 3, 4, 5, 6]},
		{"op": "insert", "rel": "W1", "tuple": [9002, 1, 2, 3, 4, 5, 6]}
	]}`)
	if code != 200 || !strings.Contains(body, `"messages"`) {
		t.Fatalf("/update = %d %q", code, body)
	}
	var udoc struct {
		VersionSeqs []uint64 `json:"versionSeqs"`
		Applied     int      `json:"applied"`
		Messages    int      `json:"messages"`
	}
	if err := json.Unmarshal([]byte(body), &udoc); err != nil {
		t.Fatalf("/update JSON: %v in %q", err, body)
	}
	// Each of the 2 replicas maintained its own views from the same 3-update
	// batch; messages sum across shards.
	if udoc.Applied != 3 || udoc.Messages != 6 {
		t.Fatalf("/update = %+v", udoc)
	}
	for i, seq := range udoc.VersionSeqs {
		if seq <= seqsBefore[i] {
			t.Fatalf("/update did not advance shard %d: %v -> %v", i, seqsBefore, udoc.VersionSeqs)
		}
	}
	if code, _ := post(`{"updates": [{"op": "insert", "rel": "NoSuchRel", "tuple": [1]}]}`); code != http.StatusBadRequest {
		t.Errorf("/update unknown relation = %d, want 400", code)
	}
	if code, _ := post(`{"updates": [{"op": "upsert", "rel": "W1", "tuple": [1]}]}`); code != http.StatusBadRequest {
		t.Errorf("/update unknown op = %d, want 400", code)
	}
	if code, _ := post(`garbage`); code != http.StatusBadRequest {
		t.Errorf("/update bad JSON = %d, want 400", code)
	}
	if code, _ := post(`{}`); code != http.StatusBadRequest {
		t.Errorf("/update empty batch = %d, want 400", code)
	}
	if code, _ := get(t, srv.URL, "/update"); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /update = %d, want 405", code)
	}

	for i, c := range h.Changes {
		d.writerMu.Lock()
		_, err := d.cl.EvolveBatch(context.Background(), []eve.Change{c})
		d.writerMu.Unlock()
		if err != nil {
			t.Fatalf("change %d: %v", i, err)
		}
		d.applied.Add(1)
		if i%10 == 0 {
			checkAll()
		}
	}
	checkAll()

	if code, _ := get(t, srv.URL, "/views/NoSuchView"); code != http.StatusNotFound {
		t.Errorf("/views/NoSuchView = %d, want 404", code)
	}
	if code, _ := get(t, srv.URL, "/bogus"); code != http.StatusNotFound {
		t.Errorf("/bogus = %d, want 404", code)
	}
}

// TestReadyzGatesOnRegistration: /readyz is 503 until the view registration
// pass completes, then 200 — the probe a load balancer keys on.
func TestReadyzGatesOnRegistration(t *testing.T) {
	d, _, err := buildDaemon(2, 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.handler(0))
	defer srv.Close()

	d.registered.Store(false)
	if code, _ := get(t, srv.URL, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before registration = %d, want 503", code)
	}
	if code, body := get(t, srv.URL, "/"); code != 200 || !strings.Contains(body, `"ready": false`) {
		t.Fatalf("/ during startup = %d %q, want ready:false", code, body)
	}
	d.registered.Store(true)
	if code, _ := get(t, srv.URL, "/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz after registration = %d, want 200", code)
	}
	if code, _ := get(t, srv.URL, "/healthz"); code != http.StatusOK {
		t.Fatal("liveness must not gate on readiness")
	}
}

// TestGracefulShutdownCompletesInFlightQuery: an in-flight /query started
// before Shutdown completes with a full 200 response while new connections
// are refused — the drain regression eved's SIGTERM handling relies on.
func TestGracefulShutdownCompletesInFlightQuery(t *testing.T) {
	d, _, err := buildDaemon(2, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	d.slowQuery = 300 * time.Millisecond
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: d.handler(5 * time.Second)}
	go srv.Serve(ln) //nolint:errcheck // ErrServerClosed after Shutdown
	base := "http://" + ln.Addr().String()

	type result struct {
		code int
		body string
		err  error
	}
	resc := make(chan result, 1)
	go func() {
		resp, err := http.Get(base + "/query?q=" + url.QueryEscape("SELECT A1 FROM W1"))
		if err != nil {
			resc <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		resc <- result{code: resp.StatusCode, body: string(b), err: err}
	}()
	time.Sleep(100 * time.Millisecond) // request is in flight (slowQuery holds it)

	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if waited := time.Since(start); waited < 100*time.Millisecond {
		t.Errorf("Shutdown returned in %v — did not wait for the in-flight request", waited)
	}
	r := <-resc
	if r.err != nil {
		t.Fatalf("in-flight query failed during drain: %v", r.err)
	}
	if r.code != http.StatusOK || !strings.Contains(r.body, "checksum") {
		t.Fatalf("in-flight query = %d %q, want complete 200", r.code, r.body)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("new connection accepted after Shutdown")
	}
}

// TestLimitListenerCapsConcurrency: with a cap of 1, a second connection is
// not accepted until the first closes, and the slot is returned exactly
// once even under double-Close.
func TestLimitListenerCapsConcurrency(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := limitListener(inner, 1)
	defer ln.Close()

	accepted := make(chan net.Conn, 2)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			accepted <- c
		}
	}()
	dial := func() net.Conn {
		t.Helper()
		c, err := net.Dial("tcp", inner.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	c1 := dial()
	defer c1.Close()
	var s1 net.Conn
	select {
	case s1 = <-accepted:
	case <-time.After(2 * time.Second):
		t.Fatal("first connection never accepted")
	}
	c2 := dial() // queues in the backlog; must not be accepted yet
	defer c2.Close()
	select {
	case <-accepted:
		t.Fatal("second connection accepted past the cap")
	case <-time.After(150 * time.Millisecond):
	}
	s1.Close()
	s1.Close() // double-close must not free a second slot
	select {
	case s2 := <-accepted:
		s2.Close()
	case <-time.After(2 * time.Second):
		t.Fatal("second connection never accepted after slot freed")
	}
}

// TestPerRequestTimeout: a request that outlives the configured timeout is
// cut off with a non-200 instead of hanging.
func TestPerRequestTimeout(t *testing.T) {
	d, _, err := buildDaemon(1, 5, 13)
	if err != nil {
		t.Fatal(err)
	}
	d.slowQuery = 2 * time.Second
	srv := httptest.NewServer(d.handler(50 * time.Millisecond))
	defer srv.Close()
	start := time.Now()
	code, _ := get(t, srv.URL, "/query?q="+url.QueryEscape("SELECT A1 FROM W1"))
	if code == http.StatusOK {
		t.Fatalf("slow query returned 200 despite 50ms timeout")
	}
	if time.Since(start) > time.Second {
		t.Fatalf("timed-out query took %v, want prompt failure", time.Since(start))
	}
}
