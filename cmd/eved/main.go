// Command eved is the serving demo: an HTTP daemon that answers view
// queries from epoch-published warehouse versions while a churn session
// evolves the warehouse underneath. It is the end-to-end proof of the
// "serving reads during evolution" contract — requests are served lock-free
// from immutable snapshots, so the evolution writer never blocks a reader
// and a reader never sees a half-applied pass.
//
// Usage:
//
//	go run ./cmd/eved [-addr :8080] [-interval 250ms] [-changes 200] [-seed 1]
//
// Endpoints:
//
//	GET  /          JSON status: version seq/epoch, live view count, change progress
//	GET  /views     JSON list of the current version's live views
//	GET  /views/V   one view at one version: definition, history, extent
//	GET  /query?q=  route an ad-hoc SELECT through the MV router (JSON: the
//	                chosen route, costs, rows, and the result's row checksum)
//	POST /update    apply a batch of data updates through incremental view
//	                maintenance (JSON body: {"updates": [{"op": "insert",
//	                "rel": "W1", "tuple": [1, 2, ...]}, ...]}); responds with
//	                the measured maintenance metrics and the new version seq
//	GET  /healthz   liveness probe
//
// Every read request acquires one version (eve.System.Snapshot) and serves
// entirely from it, so even a multi-view response is internally consistent
// no matter how many passes commit while it renders. Updates share the
// single evolution writer with the churn stream (writes are serialized;
// reads never are).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	eve "repro"
	"repro/internal/exec"
	"repro/internal/scenario"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	interval := flag.Duration("interval", 250*time.Millisecond, "delay between capability changes")
	changes := flag.Int("changes", 200, "length of the generated churn stream")
	seed := flag.Int64("seed", 1, "churn scenario seed")
	flag.Parse()

	sys, h, err := buildSystem(*changes, *seed)
	if err != nil {
		log.Fatal(err)
	}

	var applied atomic.Int64
	var writerMu sync.Mutex // one evolution writer: churn stream + /update
	go func() {
		ses := sys.Session()
		for i, c := range h.Changes {
			time.Sleep(*interval)
			writerMu.Lock()
			_, err := ses.Evolve(context.Background(), c)
			writerMu.Unlock()
			if err != nil {
				log.Printf("change %d (%s): %v", i, c, err)
				return
			}
			applied.Add(1)
			log.Printf("change %d/%d landed: %s (version seq=%d, %d live views)",
				i+1, len(h.Changes), c, sys.Snapshot().Seq(), len(sys.Snapshot().ViewNames()))
		}
		log.Printf("churn stream finished; still serving")
	}()

	log.Printf("eved serving on %s (%d views, %d queued changes, every %s)",
		*addr, len(sys.Snapshot().ViewNames()), len(h.Changes), *interval)
	log.Fatal(http.ListenAndServe(*addr, newHandler(sys, &writerMu, &applied, len(h.Changes))))
}

// buildSystem assembles the demo warehouse: a churn scenario space with
// populated relations and its twin views registered.
func buildSystem(changes int, seed int64) (*eve.System, *scenario.ChurnHistory, error) {
	h, err := scenario.Churn(scenario.ChurnParams{
		Families:          2,
		TwinsPerFamily:    4,
		Width:             6,
		Donors:            2,
		Spares:            4,
		SpareAttrs:        4,
		Changes:           changes,
		Seed:              seed,
		FamilyDeleteRatio: 0.10,
		FamilyRenameRatio: 0.10,
		DonorRatio:        0.08,
		ReplaceableViews:  true,
	})
	if err != nil {
		return nil, nil, err
	}
	sp, err := h.BuildSpace()
	if err != nil {
		return nil, nil, err
	}
	if err := scenario.Populate(sp, 100); err != nil {
		return nil, nil, err
	}
	sys, err := eve.New(eve.WithSpace(sp))
	if err != nil {
		return nil, nil, err
	}
	for _, def := range h.Views() {
		if _, err := sys.RegisterView(def); err != nil {
			return nil, nil, err
		}
	}
	return sys, h, nil
}

// newHandler builds the HTTP mux over the system's serving surface.
// writerMu serializes /update batches with the churn stream's evolution
// writer; readers never take it.
func newHandler(sys *eve.System, writerMu *sync.Mutex, applied *atomic.Int64, total int) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})

	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		v := sys.Snapshot()
		writeJSON(w, map[string]any{
			"versionSeq":     v.Seq(),
			"viewEpoch":      v.Epoch(),
			"liveViews":      len(v.ViewNames()),
			"changesApplied": applied.Load(),
			"changesTotal":   total,
		})
	})

	mux.HandleFunc("/views", func(w http.ResponseWriter, r *http.Request) {
		v := sys.Snapshot()
		type row struct {
			Name   string `json:"name"`
			Tuples int    `json:"tuples"`
		}
		rows := make([]row, 0, len(v.Views()))
		for _, vv := range v.Views() {
			rows = append(rows, row{Name: vv.Name, Tuples: vv.Extent.Card()})
		}
		writeJSON(w, map[string]any{"versionSeq": v.Seq(), "views": rows})
	})

	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		sql := r.URL.Query().Get("q")
		if sql == "" {
			http.Error(w, "missing q parameter", http.StatusBadRequest)
			return
		}
		v := sys.Snapshot()
		rt, err := v.RouteQuery(sql)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		res, err := rt.Execute(r.Context())
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		rows := make([][]string, 0, res.Card())
		for _, t := range res.Sorted() {
			row := make([]string, len(t))
			for i, val := range t {
				row[i] = val.Text()
			}
			rows = append(rows, row)
		}
		writeJSON(w, map[string]any{
			"versionSeq": v.Seq(),
			"route":      rt.Kind.String(),
			"view":       rt.View,
			"cost":       rt.Cost,
			"baseCost":   rt.BaseCost,
			"columns":    res.Schema().Names(),
			"rows":       rows,
			"checksum":   fmt.Sprintf("%016x", exec.RowChecksum(res)),
		})
	})

	mux.HandleFunc("/update", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req struct {
			Updates []struct {
				Op    string  `json:"op"`
				Rel   string  `json:"rel"`
				Tuple []int64 `json:"tuple"`
			} `json:"updates"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
			return
		}
		if len(req.Updates) == 0 {
			http.Error(w, "empty update batch", http.StatusBadRequest)
			return
		}
		batch := make([]eve.Update, 0, len(req.Updates))
		for _, u := range req.Updates {
			tup := make(eve.Tuple, len(u.Tuple))
			for i, v := range u.Tuple {
				tup[i] = eve.Int(v)
			}
			switch u.Op {
			case "insert":
				batch = append(batch, eve.InsertTuple(u.Rel, tup))
			case "delete":
				batch = append(batch, eve.DeleteTuple(u.Rel, tup))
			default:
				http.Error(w, fmt.Sprintf("unknown op %q (want insert or delete)", u.Op), http.StatusBadRequest)
				return
			}
		}
		writerMu.Lock()
		metrics, err := sys.ApplyUpdates(r.Context(), batch)
		writerMu.Unlock()
		if err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, eve.ErrUnknownRelation) {
				status = http.StatusBadRequest
			}
			http.Error(w, err.Error(), status)
			return
		}
		writeJSON(w, map[string]any{
			"versionSeq": sys.Snapshot().Seq(),
			"applied":    len(batch),
			"messages":   metrics.Messages,
			"bytes":      metrics.Bytes,
			"ios":        metrics.IO,
		})
	})

	mux.HandleFunc("/views/", func(w http.ResponseWriter, r *http.Request) {
		name := strings.TrimPrefix(r.URL.Path, "/views/")
		v := sys.Snapshot()
		ext, err := v.Evaluate(r.Context(), name)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		vv := v.View(name)
		fmt.Fprintf(w, "version seq=%d epoch=%d\n\n%s\n", v.Seq(), v.Epoch(), eve.PrintView(vv.Def))
		for _, h := range vv.History {
			fmt.Fprintln(w, h)
		}
		fmt.Fprintf(w, "\n%s", ext)
	})

	return mux
}

// writeJSON renders v as indented JSON.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best-effort response write
}
