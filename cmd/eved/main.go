// Command eved is the scale-out serving daemon: an HTTP front-end that
// answers view queries from epoch-published warehouse versions — across one
// or many shards — while a churn session evolves the cluster underneath.
// It is the end-to-end proof of the "serving reads during evolution"
// contract: requests are served lock-free from immutable composite
// snapshots, so the evolution writer never blocks a reader and a reader
// never sees a half-applied pass, on any shard.
//
// Usage:
//
//	go run ./cmd/eved [-addr :8080] [-shards 4] [-interval 250ms]
//	    [-changes 200] [-seed 1] [-max-conns 256] [-timeout 5s] [-drain 10s]
//
// Endpoints:
//
//	GET  /          JSON status: per-shard version seqs, live view count,
//	                change progress, readiness
//	GET  /views     JSON list of the current snapshot's live views
//	GET  /views/V   one view at one snapshot: definition, history, extent
//	GET  /relations JSON list of the queryable base relations
//	GET  /query?q=  route an ad-hoc SELECT through the sharded MV router
//	                (JSON: the chosen route, costs, rows, row checksum)
//	POST /update    apply a batch of data updates through incremental view
//	                maintenance on every shard (JSON body: {"updates":
//	                [{"op": "insert", "rel": "W1", "tuple": [1, ...]}, ...]})
//	GET  /healthz   liveness probe (process is up)
//	GET  /readyz    readiness probe: 503 until every shard has published its
//	                first version and the demo views are registered
//
// Hardening: -max-conns caps concurrently accepted connections (excess
// connections queue in the kernel backlog), -timeout bounds each request's
// context, and SIGINT/SIGTERM trigger a graceful drain — the listener
// closes, in-flight requests complete (up to -drain), then the process
// exits. Every read acquires one composite snapshot (eve.Cluster.Snapshot)
// and serves entirely from it; updates share the single evolution writer
// with the churn stream.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	eve "repro"
	"repro/internal/exec"
	"repro/internal/scenario"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	shards := flag.Int("shards", 1, "number of warehouse shards")
	interval := flag.Duration("interval", 250*time.Millisecond, "delay between capability changes")
	changes := flag.Int("changes", 200, "length of the generated churn stream")
	seed := flag.Int64("seed", 1, "churn scenario seed")
	maxConns := flag.Int("max-conns", 256, "max concurrently accepted connections (0 = unlimited)")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request timeout (0 = none)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
	flag.Parse()

	d, h, err := buildDaemon(*shards, *changes, *seed)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	go func() {
		ses := d.cl
		for i, c := range h.Changes {
			select {
			case <-ctx.Done():
				return
			case <-time.After(*interval):
			}
			d.writerMu.Lock()
			_, err := ses.EvolveBatch(context.Background(), []eve.Change{c})
			d.writerMu.Unlock()
			if err != nil {
				log.Printf("change %d (%s): %v", i, c, err)
				return
			}
			d.applied.Add(1)
			snap := d.cl.Snapshot()
			log.Printf("change %d/%d landed: %s (seqs=%v, %d live views)",
				i+1, len(h.Changes), c, snap.Seqs(), len(snap.ViewNames()))
		}
		log.Printf("churn stream finished; still serving")
	}()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	if *maxConns > 0 {
		ln = limitListener(ln, *maxConns)
	}
	srv := &http.Server{
		Handler:           d.handler(*timeout),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	log.Printf("eved serving on %s (%d shards, %d views, %d queued changes, every %s)",
		ln.Addr(), d.cl.Shards(), len(d.cl.Snapshot().ViewNames()), len(h.Changes), *interval)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Printf("signal received; draining (budget %s)", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		log.Fatalf("drain: %v", err)
	}
	log.Printf("drained; bye")
}

// daemon bundles the serving state behind the HTTP handler: the cluster,
// the single evolution writer's mutex (shared by the churn stream and
// /update), change progress, and the readiness latch.
type daemon struct {
	cl       *eve.Cluster
	writerMu sync.Mutex
	applied  atomic.Int64
	total    int

	// registered flips once the demo views are registered; /readyz reports
	// 503 until then (and until every shard has published a first version).
	registered atomic.Bool

	// slowQuery, when positive, stretches every /query request by that
	// duration — a test hook for the graceful-drain regression test.
	slowQuery time.Duration
}

// ready reports serving readiness: every shard published at least one
// version and the view registration pass completed.
func (d *daemon) ready() bool { return d.registered.Load() && d.cl.Ready() }

// buildDaemon assembles the demo cluster: a churn scenario space with
// populated relations, sharded n ways, with the twin views registered.
func buildDaemon(shards, changes int, seed int64) (*daemon, *scenario.ChurnHistory, error) {
	h, err := scenario.Churn(scenario.ChurnParams{
		Families:          2,
		TwinsPerFamily:    4,
		Width:             6,
		Donors:            2,
		Spares:            4,
		SpareAttrs:        4,
		Changes:           changes,
		Seed:              seed,
		FamilyDeleteRatio: 0.10,
		FamilyRenameRatio: 0.10,
		DonorRatio:        0.08,
		ReplaceableViews:  true,
	})
	if err != nil {
		return nil, nil, err
	}
	sp, err := h.BuildSpace()
	if err != nil {
		return nil, nil, err
	}
	if err := scenario.Populate(sp, 100); err != nil {
		return nil, nil, err
	}
	cl, err := eve.NewCluster(eve.WithShards(shards), eve.WithSpace(sp))
	if err != nil {
		return nil, nil, err
	}
	d := &daemon{cl: cl, total: len(h.Changes)}
	for _, def := range h.Views() {
		if _, _, err := cl.RegisterView(context.Background(), def); err != nil {
			return nil, nil, err
		}
	}
	d.registered.Store(true)
	return d, h, nil
}

// handler builds the HTTP mux over the cluster's serving surface, wrapping
// every request in the per-request timeout when one is configured.
func (d *daemon) handler(timeout time.Duration) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})

	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if !d.ready() {
			http.Error(w, "not ready: waiting for first version on every shard", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})

	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		v := d.cl.Snapshot()
		writeJSON(w, map[string]any{
			"shards":         v.Shards(),
			"versionSeqs":    v.Seqs(),
			"liveViews":      len(v.ViewNames()),
			"changesApplied": d.applied.Load(),
			"changesTotal":   d.total,
			"ready":          d.ready(),
		})
	})

	mux.HandleFunc("/relations", func(w http.ResponseWriter, r *http.Request) {
		v := d.cl.Snapshot()
		writeJSON(w, map[string]any{"versionSeqs": v.Seqs(), "relations": v.RelationNames()})
	})

	mux.HandleFunc("/views", func(w http.ResponseWriter, r *http.Request) {
		v := d.cl.Snapshot()
		type row struct {
			Name   string `json:"name"`
			Tuples int    `json:"tuples"`
		}
		rows := make([]row, 0, len(v.Views()))
		for _, vv := range v.Views() {
			rows = append(rows, row{Name: vv.Name, Tuples: vv.Extent.Card()})
		}
		writeJSON(w, map[string]any{"versionSeqs": v.Seqs(), "views": rows})
	})

	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		sql := r.URL.Query().Get("q")
		if sql == "" {
			http.Error(w, "missing q parameter", http.StatusBadRequest)
			return
		}
		if d.slowQuery > 0 {
			select {
			case <-time.After(d.slowQuery):
			case <-r.Context().Done():
			}
		}
		v := d.cl.Snapshot()
		rt, err := v.RouteQuery(sql)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		res, err := rt.Execute(r.Context())
		if err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
				status = http.StatusServiceUnavailable
			}
			http.Error(w, err.Error(), status)
			return
		}
		rows := make([][]string, 0, res.Card())
		for _, t := range res.Sorted() {
			row := make([]string, len(t))
			for i, val := range t {
				row[i] = val.Text()
			}
			rows = append(rows, row)
		}
		writeJSON(w, map[string]any{
			"versionSeqs": v.Seqs(),
			"route":       rt.Kind.String(),
			"view":        rt.View,
			"cost":        rt.Cost,
			"baseCost":    rt.BaseCost,
			"columns":     res.Schema().Names(),
			"rows":        rows,
			"checksum":    fmt.Sprintf("%016x", exec.RowChecksum(res)),
		})
	})

	mux.HandleFunc("/update", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req struct {
			Updates []struct {
				Op    string  `json:"op"`
				Rel   string  `json:"rel"`
				Tuple []int64 `json:"tuple"`
			} `json:"updates"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
			return
		}
		if len(req.Updates) == 0 {
			http.Error(w, "empty update batch", http.StatusBadRequest)
			return
		}
		batch := make([]eve.Update, 0, len(req.Updates))
		for _, u := range req.Updates {
			tup := make(eve.Tuple, len(u.Tuple))
			for i, v := range u.Tuple {
				tup[i] = eve.Int(v)
			}
			switch u.Op {
			case "insert":
				batch = append(batch, eve.InsertTuple(u.Rel, tup))
			case "delete":
				batch = append(batch, eve.DeleteTuple(u.Rel, tup))
			default:
				http.Error(w, fmt.Sprintf("unknown op %q (want insert or delete)", u.Op), http.StatusBadRequest)
				return
			}
		}
		d.writerMu.Lock()
		metrics, err := d.cl.ApplyUpdates(r.Context(), batch)
		d.writerMu.Unlock()
		if err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, eve.ErrUnknownRelation) {
				status = http.StatusBadRequest
			}
			http.Error(w, err.Error(), status)
			return
		}
		writeJSON(w, map[string]any{
			"versionSeqs": d.cl.Snapshot().Seqs(),
			"applied":     len(batch),
			"messages":    metrics.Messages,
			"bytes":       metrics.Bytes,
			"ios":         metrics.IO,
		})
	})

	mux.HandleFunc("/views/", func(w http.ResponseWriter, r *http.Request) {
		name := strings.TrimPrefix(r.URL.Path, "/views/")
		v := d.cl.Snapshot()
		ext, err := v.Evaluate(r.Context(), name)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		vv := v.View(name)
		fmt.Fprintf(w, "version seqs=%v\n\n%s\n", v.Seqs(), eve.PrintView(vv.Def))
		for _, h := range vv.History {
			fmt.Fprintln(w, h)
		}
		fmt.Fprintf(w, "\n%s", ext)
	})

	if timeout <= 0 {
		return mux
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()
		mux.ServeHTTP(w, r.WithContext(ctx))
	})
}

// writeJSON renders v as indented JSON.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best-effort response write
}

// limitListener caps concurrently accepted connections at n: Accept blocks
// once n connections are open, and each connection returns its slot when
// closed. Excess dials queue in the kernel backlog instead of fanning out
// unbounded handler goroutines.
func limitListener(ln net.Listener, n int) net.Listener {
	return &limitedListener{Listener: ln, sem: make(chan struct{}, n)}
}

type limitedListener struct {
	net.Listener
	sem chan struct{}
}

// Accept implements net.Listener with the concurrency cap.
func (l *limitedListener) Accept() (net.Conn, error) {
	l.sem <- struct{}{}
	c, err := l.Listener.Accept()
	if err != nil {
		<-l.sem
		return nil, err
	}
	return &limitedConn{Conn: c, sem: l.sem}, nil
}

type limitedConn struct {
	net.Conn
	sem  chan struct{}
	once sync.Once
}

// Close returns the connection's slot exactly once.
func (c *limitedConn) Close() error {
	err := c.Conn.Close()
	c.once.Do(func() { <-c.sem })
	return err
}
