// Command esqlfmt parses E-SQL view definitions and pretty-prints them in
// canonical form, reporting syntax errors with offsets. It reads from files
// given as arguments, or from standard input when none are given.
//
// Usage:
//
//	esqlfmt view.esql
//	echo "CREATE VIEW V AS SELECT R.A FROM R" | esqlfmt
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"repro/internal/esql"
)

func main() {
	log.SetFlags(0)
	flag.Parse()

	var inputs []string
	if flag.NArg() == 0 {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			log.Fatalf("esqlfmt: reading stdin: %v", err)
		}
		inputs = append(inputs, string(data))
	} else {
		for _, path := range flag.Args() {
			data, err := os.ReadFile(path)
			if err != nil {
				log.Fatalf("esqlfmt: %v", err)
			}
			inputs = append(inputs, string(data))
		}
	}

	exit := 0
	for _, src := range inputs {
		// A file may contain several statements separated by blank lines
		// or semicolons; parse each CREATE VIEW independently.
		for _, stmt := range splitStatements(src) {
			v, err := esql.Parse(stmt)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				exit = 1
				continue
			}
			fmt.Println(esql.Print(v))
			fmt.Println()
		}
	}
	os.Exit(exit)
}

// splitStatements separates a source blob into CREATE VIEW statements.
func splitStatements(src string) []string {
	var out []string
	upper := strings.ToUpper(src)
	starts := []int{}
	for i := 0; i+11 <= len(upper); i++ {
		if strings.HasPrefix(upper[i:], "CREATE VIEW") {
			starts = append(starts, i)
		}
	}
	if len(starts) == 0 {
		if strings.TrimSpace(src) != "" {
			out = append(out, src)
		}
		return out
	}
	for i, s := range starts {
		end := len(src)
		if i+1 < len(starts) {
			end = starts[i+1]
		}
		stmt := strings.TrimSpace(src[s:end])
		stmt = strings.TrimSuffix(stmt, ";")
		if stmt != "" {
			out = append(out, stmt)
		}
	}
	return out
}
