package main

import "testing"

func TestSplitStatements(t *testing.T) {
	src := `
CREATE VIEW A AS SELECT R.X FROM R;

create view B as select S.Y from S
`
	stmts := splitStatements(src)
	if len(stmts) != 2 {
		t.Fatalf("statements = %d, want 2", len(stmts))
	}
	if stmts[0][:11] != "CREATE VIEW" {
		t.Errorf("first = %q", stmts[0])
	}
}

func TestSplitStatementsNoMarker(t *testing.T) {
	got := splitStatements("just some text")
	if len(got) != 1 {
		t.Fatalf("passthrough failed: %v", got)
	}
	if len(splitStatements("   ")) != 0 {
		t.Error("blank input should yield nothing")
	}
}

func TestSplitStatementsTrimsSemicolons(t *testing.T) {
	got := splitStatements("CREATE VIEW A AS SELECT R.X FROM R;")
	if len(got) != 1 || got[0][len(got[0])-1] == ';' {
		t.Errorf("semicolon not trimmed: %v", got)
	}
}
