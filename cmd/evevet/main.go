// Command evevet is the repository's invariant linter: one entry point
// running the internal/analysis suite — versionmut, cowcheck, knobguard,
// ctxflow, errlink, doccheck — over every package of the module, tests
// included. Each analyzer encodes an engine invariant that a past PR's bug
// made explicit (see internal/analysis/doc.go for the mapping); findings
// print as
//
//	path/file.go:line:col: analyzer: message
//
// and any finding fails the run (exit 1; exit 2 on load errors), so
// `make lint` / `make ci` stop before tests ever run. Use -run to select a
// comma-separated subset of analyzers, and -list to print the suite.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	runFlag := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	listFlag := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	all := analysis.Analyzers()
	if *listFlag {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers, err := selectAnalyzers(all, *runFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "evevet:", err)
		os.Exit(2)
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "evevet:", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		fmt.Fprintln(os.Stderr, "evevet:", err)
		os.Exit(2)
	}
	findings, err := analysis.RunAnalyzers(loader.Fset, pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "evevet:", err)
		os.Exit(2)
	}
	if len(findings) == 0 {
		return
	}
	cwd, _ := os.Getwd()
	for _, f := range findings {
		fmt.Println(f.Relative(cwd))
	}
	fmt.Printf("evevet: %d finding(s)\n", len(findings))
	os.Exit(1)
}

// selectAnalyzers resolves the -run flag against the suite.
func selectAnalyzers(all []*analysis.Analyzer, runFlag string) ([]*analysis.Analyzer, error) {
	if runFlag == "" {
		return all, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(runFlag, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (use -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}
