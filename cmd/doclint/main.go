// Command doclint is the repository's documentation linter: a small go
// vet-style checker that fails (exit status 1) when the public API surface —
// the root eve package and everything under internal/ — has an exported
// identifier without a doc comment, or a package without a package comment.
// It runs in CI (make doclint, the ci target, and the GitHub workflow) so
// the documentation contract of ISSUE 2 cannot silently regress.
//
// Rules, intentionally close to the classic golint/revive "exported" rule:
//
//   - every linted package needs a package comment on exactly one file
//     (by convention doc.go);
//   - every exported function, and every exported method on an exported
//     receiver type, needs a doc comment;
//   - every exported type, const, and var needs a doc comment either on its
//     own spec or on the enclosing declaration group (a documented
//     const/var block documents its members).
//
// Test files are ignored.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	dirs, err := lintDirs(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "doclint:", err)
		os.Exit(2)
	}
	var violations []string
	for _, dir := range dirs {
		v, err := lintDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doclint:", err)
			os.Exit(2)
		}
		violations = append(violations, v...)
	}
	if len(violations) > 0 {
		sort.Strings(violations)
		for _, v := range violations {
			fmt.Println(v)
		}
		fmt.Printf("doclint: %d undocumented exported identifier(s)\n", len(violations))
		os.Exit(1)
	}
}

// lintDirs returns the module root (the eve package) plus every directory
// under internal/ that contains Go files.
func lintDirs(root string) ([]string, error) {
	dirs := []string{root}
	err := filepath.WalkDir(filepath.Join(root, "internal"), func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		hasGo, err := containsGo(path)
		if err != nil {
			return err
		}
		if hasGo {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}

func containsGo(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true, nil
		}
	}
	return false, nil
}

// lintDir parses one directory (tests excluded) and reports its violations.
func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []string
	for name, pkg := range pkgs {
		if name == "main" && dir == "." {
			continue
		}
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			out = append(out, fmt.Sprintf("%s: package %s should have a package comment", dir, name))
		}
		exportedTypes := map[string]bool{}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				if gd, ok := decl.(*ast.GenDecl); ok && gd.Tok == token.TYPE {
					for _, spec := range gd.Specs {
						ts := spec.(*ast.TypeSpec)
						if ts.Name.IsExported() {
							exportedTypes[ts.Name.Name] = true
						}
					}
				}
			}
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				out = append(out, lintDecl(fset, decl, exportedTypes)...)
			}
		}
	}
	return out, nil
}

// lintDecl reports the undocumented exported identifiers of one top-level
// declaration.
func lintDecl(fset *token.FileSet, decl ast.Decl, exportedTypes map[string]bool) []string {
	var out []string
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return nil
		}
		if d.Recv != nil && !exportedTypes[receiverTypeName(d.Recv)] {
			return nil // method on an unexported type: not API surface
		}
		if d.Doc == nil {
			kind := "function"
			name := d.Name.Name
			if d.Recv != nil {
				kind = "method"
				name = receiverTypeName(d.Recv) + "." + name
			}
			out = append(out, fmt.Sprintf("%s: exported %s %s should have a doc comment",
				fset.Position(d.Pos()), kind, name))
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					out = append(out, fmt.Sprintf("%s: exported type %s should have a doc comment",
						fset.Position(s.Pos()), s.Name.Name))
				}
			case *ast.ValueSpec:
				if d.Doc != nil || s.Doc != nil || s.Comment != nil {
					continue
				}
				for _, n := range s.Names {
					if n.IsExported() {
						out = append(out, fmt.Sprintf("%s: exported %s %s should have a doc comment",
							fset.Position(s.Pos()), strings.ToLower(d.Tok.String()), n.Name))
					}
				}
			}
		}
	}
	return out
}

// receiverTypeName extracts the base type name of a method receiver.
func receiverTypeName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}
