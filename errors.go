package eve

import (
	"repro/internal/esql"
	"repro/internal/maintain"
	"repro/internal/persist"
	"repro/internal/space"
	"repro/internal/warehouse"
)

// Typed error taxonomy of the v2 API. Every error the system returns for a
// recognizable failure mode either is one of these sentinels (match with
// errors.Is) or is a typed error carrying structured context (match with
// errors.As); the stringly fmt.Errorf surface of v1 survives only for
// failures with no meaningful program response.
var (
	// ErrViewNotFound reports a lookup of a view name that was never
	// registered (System.GetView).
	ErrViewNotFound = warehouse.ErrViewNotFound
	// ErrViewDeceased reports an operation on a view that a capability
	// change left without any legal rewriting.
	ErrViewDeceased = warehouse.ErrViewDeceased
	// ErrNoRewriting reports that a capability change left a view without
	// any legal rewriting — SyncResult.Err wraps it for deceased outcomes.
	ErrNoRewriting = warehouse.ErrNoRewriting
	// ErrDuplicateView reports defining a view name twice.
	ErrDuplicateView = warehouse.ErrDuplicateView
	// ErrUnknownRelation reports a data update (ApplyUpdates) addressed to
	// a relation the information space does not hold.
	ErrUnknownRelation = maintain.ErrUnknownRelation
)

// Typed errors carrying structured context, for errors.As.
type (
	// ParseError is a lexical or syntactic E-SQL error with the byte
	// offset where parsing failed. ParseView and DefineView return it for
	// malformed sources.
	ParseError = esql.ParseError
	// ChangeError wraps a capability change the information space
	// rejected, together with the reason. ApplyChange, EvolveBatch, and
	// Stream return it when a change of a batch cannot land; the landed
	// prefix before it stays applied.
	ChangeError = space.ChangeError
	// VersionError reports a persisted space document whose format
	// version this build does not read (persist.Load via LoadSpace).
	VersionError = persist.VersionError
)
