package eve

// BenchmarkSynchronizeWide contrasts the two rewriting-search paths on wide
// views (10–18 droppable attributes, i.e. 2^10–2^18 drop-variants per base
// rewriting):
//
//   - exhaustive: Synchronize materializes the full CVS spectrum, then
//     RankRewritings scores and sorts every candidate;
//   - topk: SearchTopK scores the base rewritings, then streams each base's
//     variants best-first and branch-and-bounds against the K-th best QC
//     score, so almost none of the spectrum is ever built.
//
// The pruned path's advantage grows exponentially with width; at width 18 it
// is several orders of magnitude beyond the ≥5x acceptance bar.

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/scenario"
	"repro/internal/space"
	"repro/internal/warehouse"
)

// wideSetup prepares one warehouse over the wide scenario with the full
// drop-variant spectrum enabled.
func wideSetup(b *testing.B, width int) (*warehouse.Warehouse, *warehouse.View, space.Change, *warehouse.Snapshot) {
	b.Helper()
	sp, err := scenario.WideSpace(width, 2)
	if err != nil {
		b.Fatal(err)
	}
	w := warehouse.New(sp)
	w.Synchronizer.EnumerateDropVariants = true
	w.Synchronizer.MaxDropVariants = 1 << 30
	v := &warehouse.View{Def: scenario.WideView(width)}
	c := space.Change{Kind: space.DeleteRelation, Rel: "W0"}
	return w, v, c, w.TakeSnapshot()
}

// BenchmarkSynchronizeWide runs exhaustive enumerate-then-rank against the
// pruned top-5 search at increasing widths.
func BenchmarkSynchronizeWide(b *testing.B) {
	for _, width := range []int{10, 14, 18} {
		b.Run(fmt.Sprintf("exhaustive/width=%d", width), func(b *testing.B) {
			w, v, c, snap := wideSetup(b, width)
			var ranked int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rws, err := w.Synchronizer.Synchronize(context.Background(), v.Def, c)
				if err != nil {
					b.Fatal(err)
				}
				ranking, err := w.RankRewritings(v, rws, snap)
				if err != nil {
					b.Fatal(err)
				}
				ranked = len(ranking.Candidates)
			}
			b.ReportMetric(float64(ranked), "candidates")
		})
		b.Run(fmt.Sprintf("topk/width=%d", width), func(b *testing.B) {
			w, v, c, snap := wideSetup(b, width)
			var ranked int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ranking, err := w.SearchTopK(context.Background(), v, c, snap, 5)
				if err != nil {
					b.Fatal(err)
				}
				ranked = len(ranking.Candidates)
			}
			b.ReportMetric(float64(ranked), "candidates")
		})
	}
}
