package eve

// Regression test for the deprecated v1 knob surface: sys.TopK = 5 style
// field pokes used to bypass the knob mutex ("only safe while no change is
// being applied"). The fields are now unexported behind the mutex, so the
// poke path IS the Set* path — this test drives it from a tuner goroutine
// in the middle of an EvolveBatch, with concurrent accessor reads, and must
// be race-clean under -race.

import (
	"context"
	"sync"
	"testing"

	"repro/internal/scenario"
)

// TestKnobPokesMidEvolveBatch hammers every knob setter and accessor while
// a churn history runs through an evolution session. Before the knobs moved
// behind the mutex this tore running passes (and raced outright); now each
// pass snapshots one coherent knob state and the run must stay race-clean.
func TestKnobPokesMidEvolveBatch(t *testing.T) {
	h, err := scenario.Churn(scenario.ChurnParams{
		Families:          2,
		TwinsPerFamily:    3,
		Width:             5,
		Donors:            2,
		Spares:            3,
		SpareAttrs:        4,
		Changes:           60,
		Seed:              31,
		FamilyDeleteRatio: 0.2,
		FamilyRenameRatio: 0.1,
		DonorRatio:        0.1,
		ReplaceableViews:  true,
		AllowDecease:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := h.BuildSpace()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(WithSpace(sp), WithDropVariants(true))
	if err != nil {
		t.Fatal(err)
	}
	for _, def := range h.Views() {
		if _, err := sys.RegisterView(context.Background(), def); err != nil {
			t.Fatal(err)
		}
	}

	a := DefaultTradeoff()
	b := DefaultTradeoff()
	b.W1, b.W2 = 0.6, 0.4
	cm := DefaultCostModel()

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	// The tuner: the old v1 "field pokes", routed through the mutex.
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			if i%2 == 0 {
				sys.SetTradeoff(a)
				sys.SetTopK(0)
			} else {
				sys.SetTradeoff(b)
				sys.SetTopK(3)
			}
			sys.SetWorkers(1 + i%4)
			sys.SetCostModel(cm)
		}
	}()
	// A reader polling the accessors (the other half of the old race).
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			to := sys.Tradeoff()
			if to.W1 != a.W1 && to.W1 != b.W1 {
				t.Error("torn Tradeoff read")
				return
			}
			if k := sys.TopK(); k != 0 && k != 3 {
				t.Errorf("torn TopK read: %d", k)
				return
			}
			_ = sys.Workers()
			_ = sys.CostModel()
		}
	}()

	if _, err := sys.EvolveBatch(context.Background(), h.Changes); err != nil {
		close(done)
		wg.Wait()
		t.Fatal(err)
	}
	close(done)
	wg.Wait()
}
