package eve

// Satellite audit of the typed-error taxonomy: every sentinel and typed
// error must survive errors.Is / errors.As through every public entry
// point that can produce it — construction, parsing, registration, the
// reference ApplyChange loop, the session drivers (EvolveBatch, Stream),
// the serving read surface (Serve, Snapshot().Evaluate), persistence, and
// context cancellation.

import (
	"context"
	"encoding/json"
	"errors"
	"iter"
	"os"
	"path/filepath"
	"testing"
)

// taxonomySystem builds a parts system with one view that will decease on
// DeleteRelation("Parts") — the fixture every error path below shares.
func taxonomySystem(t *testing.T) *System {
	t.Helper()
	sys := buildPartsSystem(t)
	if _, err := sys.DefineView(context.Background(), `CREATE VIEW V AS SELECT P.Name FROM Parts P`); err != nil {
		t.Fatal(err)
	}
	return sys
}

// badChange is rejected by the space (unknown relation), producing a
// *ChangeError from every driver.
var badChange = DeleteRelation("NoSuchRelation")

func TestErrorTaxonomySurvivesPublicEntryPoints(t *testing.T) {
	versionSkewFile := filepath.Join(t.TempDir(), "space.json")
	raw, err := json.Marshal(map[string]any{"version": 999})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(versionSkewFile, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()

	cases := []struct {
		name string
		got  func(t *testing.T) error
		want error // matched with errors.Is; nil means use check instead
		// check is the errors.As assertion for structured error types.
		check func(t *testing.T, err error)
	}{
		{
			name: "New invalid option",
			got: func(t *testing.T) error {
				_, err := New(WithTopK(-1))
				return err
			},
			want: ErrInvalidOption,
		},
		{
			name: "New invalid tradeoff wraps the validation error",
			got: func(t *testing.T) error {
				bad := DefaultTradeoff()
				bad.W1 = 2.5
				_, err := New(WithTradeoff(bad))
				return err
			},
			want: ErrInvalidOption,
		},
		{
			name: "ParseView syntax error",
			got: func(t *testing.T) error {
				_, err := ParseView("CREATE GARBAGE")
				return err
			},
			check: func(t *testing.T, err error) {
				var pe *ParseError
				if !errors.As(err, &pe) {
					t.Errorf("err = %v, want *ParseError via errors.As", err)
				}
			},
		},
		{
			name: "DefineView syntax error",
			got: func(t *testing.T) error {
				_, err := taxonomySystem(t).DefineView(context.Background(), "CREATE GARBAGE")
				return err
			},
			check: func(t *testing.T, err error) {
				var pe *ParseError
				if !errors.As(err, &pe) {
					t.Errorf("err = %v, want *ParseError via errors.As", err)
				}
			},
		},
		{
			name: "DefineView duplicate",
			got: func(t *testing.T) error {
				sys := taxonomySystem(t)
				_, err := sys.DefineView(context.Background(), `CREATE VIEW V AS SELECT M.ID FROM PartsMirror M`)
				return err
			},
			want: ErrDuplicateView,
		},
		{
			name: "GetView unknown",
			got: func(t *testing.T) error {
				_, err := taxonomySystem(t).GetView("Nope")
				return err
			},
			want: ErrViewNotFound,
		},
		{
			name: "Serve unknown view",
			got: func(t *testing.T) error {
				_, err := taxonomySystem(t).Serve(context.Background(), "Nope")
				return err
			},
			want: ErrViewNotFound,
		},
		{
			name: "Snapshot Evaluate deceased view",
			got: func(t *testing.T) error {
				sys := taxonomySystem(t)
				if _, err := sys.ApplyChange(context.Background(), DeleteRelation("Parts")); err != nil {
					t.Fatal(err)
				}
				_, err := sys.Snapshot().Evaluate(context.Background(), "V")
				return err
			},
			want: ErrViewDeceased,
		},
		{
			name: "SyncResult.Err wraps ErrNoRewriting",
			got: func(t *testing.T) error {
				sys := taxonomySystem(t)
				results, err := sys.ApplyChange(context.Background(), DeleteRelation("Parts"))
				if err != nil {
					t.Fatal(err)
				}
				return results[0].Err()
			},
			want: ErrNoRewriting,
		},
		{
			name: "ApplyChange rejected change",
			got: func(t *testing.T) error {
				_, err := taxonomySystem(t).ApplyChange(context.Background(), badChange)
				return err
			},
			check: assertChangeError,
		},
		{
			name: "EvolveBatch rejected change",
			got: func(t *testing.T) error {
				_, err := taxonomySystem(t).EvolveBatch(context.Background(), []Change{badChange})
				return err
			},
			check: assertChangeError,
		},
		{
			name: "Stream rejected change",
			got: func(t *testing.T) error {
				sys := taxonomySystem(t)
				feed := func(yield func(Change) bool) { yield(badChange) }
				var last error
				for _, err := range sys.Stream(context.Background(), iter.Seq[Change](feed)) {
					last = err
				}
				return last
			},
			check: assertChangeError,
		},
		{
			name: "ApplyUpdates unknown relation",
			got: func(t *testing.T) error {
				_, err := taxonomySystem(t).ApplyUpdates(context.Background(),
					[]Update{InsertTuple("NoSuchRelation", Tuple{Int(1)})})
				return err
			},
			want: ErrUnknownRelation,
		},
		{
			name: "ApplyUpdates cancelled context",
			got: func(t *testing.T) error {
				sys := taxonomySystem(t)
				v, err := sys.GetView("V")
				if err != nil {
					t.Fatal(err)
				}
				rel := v.Def.From[0].Rel
				width := sys.Space.Relation(rel).Schema().Len()
				tup := make(Tuple, width)
				for i := range tup {
					tup[i] = Int(999)
				}
				_, err = sys.ApplyUpdates(cancelled, []Update{InsertTuple(rel, tup)})
				return err
			},
			want: context.Canceled,
		},
		{
			name: "LoadSpace version skew",
			got: func(t *testing.T) error {
				_, err := LoadSpace(versionSkewFile)
				return err
			},
			check: func(t *testing.T, err error) {
				var ve *VersionError
				if !errors.As(err, &ve) {
					t.Errorf("err = %v, want *VersionError via errors.As", err)
					return
				}
				if ve.Got != 999 {
					t.Errorf("VersionError.Got = %d, want 999", ve.Got)
				}
			},
		},
		{
			name: "Evaluate cancelled context",
			got: func(t *testing.T) error {
				sys := taxonomySystem(t)
				v, err := sys.GetView("V")
				if err != nil {
					t.Fatal(err)
				}
				_, err = Evaluate(cancelled, v.Def, sys.Space)
				return err
			},
			want: context.Canceled,
		},
		{
			name: "EvolveBatch cancelled context",
			got: func(t *testing.T) error {
				_, err := taxonomySystem(t).EvolveBatch(cancelled, []Change{DeleteRelation("Parts")})
				return err
			},
			want: context.Canceled,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.got(t)
			if err == nil {
				t.Fatal("entry point returned nil error")
			}
			if tc.want != nil && !errors.Is(err, tc.want) {
				t.Errorf("err = %v, does not match %v via errors.Is", err, tc.want)
			}
			if tc.check != nil {
				tc.check(t, err)
			}
		})
	}
}

// assertChangeError requires a *ChangeError carrying the rejected change.
func assertChangeError(t *testing.T, err error) {
	var ce *ChangeError
	if !errors.As(err, &ce) {
		t.Errorf("err = %v, want *ChangeError via errors.As", err)
		return
	}
	if ce.Change.Rel != badChange.Rel {
		t.Errorf("ChangeError carries %v, want %v", ce.Change, badChange)
	}
}
