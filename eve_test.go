package eve

import (
	"context"
	"strings"
	"testing"
)

// buildPartsSystem mirrors the quickstart example: Parts at IS1, an exact
// mirror at IS2, a PC constraint between them.
func buildPartsSystem(t *testing.T) *System {
	t.Helper()
	sp := NewSpace()
	if _, err := sp.AddSource("IS1"); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.AddSource("IS2"); err != nil {
		t.Fatal(err)
	}
	parts := NewRelation("Parts", NewSchema(
		Attribute{Name: "PartID", Type: TypeInt},
		Attribute{Name: "Name", Type: TypeString},
		Attribute{Name: "Price", Type: TypeInt},
	))
	mirror := NewRelation("PartsMirror", NewSchema(
		Attribute{Name: "ID", Type: TypeInt},
		Attribute{Name: "PName", Type: TypeString},
	))
	for i, name := range []string{"bolt", "nut", "washer"} {
		id := Int(int64(i + 1))
		if err := parts.Insert(Tuple{id, Str(name), Int(int64(10 * (i + 1)))}); err != nil {
			t.Fatal(err)
		}
		if err := mirror.Insert(Tuple{id, Str(name)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sp.AddRelation("IS1", parts); err != nil {
		t.Fatal(err)
	}
	if err := sp.AddRelation("IS2", mirror); err != nil {
		t.Fatal(err)
	}
	if err := sp.MKB().AddPCConstraint(PCConstraint{
		Left:  Fragment{Rel: RelRef{Rel: "Parts"}, Attrs: []string{"PartID", "Name"}},
		Right: Fragment{Rel: RelRef{Rel: "PartsMirror"}, Attrs: []string{"ID", "PName"}},
		Rel:   Equal,
	}); err != nil {
		t.Fatal(err)
	}
	return NewSystemOver(sp)
}

func TestPublicAPIQuickstartFlow(t *testing.T) {
	sys := buildPartsSystem(t)
	view, err := sys.DefineView(context.Background(), `
		CREATE VIEW Catalog (VE = ~) AS
		SELECT P.PartID (AR = true), P.Name (AR = true), P.Price (AD = true)
		FROM Parts P (RR = true)`)
	if err != nil {
		t.Fatal(err)
	}
	if view.Extent.Card() != 3 {
		t.Fatalf("extent = %d", view.Extent.Card())
	}
	results, err := sys.ApplyChange(context.Background(), DeleteRelation("Parts"))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Deceased {
		t.Fatalf("results = %+v", results)
	}
	if view.Def.From[0].Rel != "PartsMirror" {
		t.Errorf("adopted relation = %q", view.Def.From[0].Rel)
	}
	if view.Extent.Card() != 3 {
		t.Errorf("re-materialized extent = %d", view.Extent.Card())
	}
	// The exposed column names survive the substitution.
	names := view.Def.OutputNames()
	if len(names) != 2 || names[0] != "PartID" || names[1] != "Name" {
		t.Errorf("output names = %v", names)
	}
}

func TestPublicAPIUpdates(t *testing.T) {
	sys := buildPartsSystem(t)
	view, err := sys.DefineView(context.Background(), `CREATE VIEW V AS SELECT P.Name FROM Parts P WHERE P.Price > 15`)
	if err != nil {
		t.Fatal(err)
	}
	if view.Extent.Card() != 2 {
		t.Fatalf("initial extent = %d", view.Extent.Card())
	}
	if _, err := sys.ApplyUpdate(context.Background(), InsertTuple("Parts", Tuple{Int(9), Str("gear"), Int(99)})); err != nil {
		t.Fatal(err)
	}
	if view.Extent.Card() != 3 {
		t.Errorf("extent after insert = %d", view.Extent.Card())
	}
	if _, err := sys.ApplyUpdate(context.Background(), DeleteTuple("Parts", Tuple{Int(9), Str("gear"), Int(99)})); err != nil {
		t.Fatal(err)
	}
	if view.Extent.Card() != 2 {
		t.Errorf("extent after delete = %d", view.Extent.Card())
	}
}

func TestPublicAPIChangeConstructors(t *testing.T) {
	if DeleteRelation("R").Rel != "R" {
		t.Error("DeleteRelation wrong")
	}
	if c := DeleteAttribute("R", "A"); c.Rel != "R" || c.Attr != "A" {
		t.Error("DeleteAttribute wrong")
	}
	if c := RenameRelation("R", "S"); c.NewName != "S" {
		t.Error("RenameRelation wrong")
	}
	if c := RenameAttribute("R", "A", "B"); c.Attr != "A" || c.NewName != "B" {
		t.Error("RenameAttribute wrong")
	}
	if c := AddAttribute("R", "Z", TypeInt); c.AttrType != TypeInt {
		t.Error("AddAttribute wrong")
	}
}

func TestPublicAPIParsePrintRoundTrip(t *testing.T) {
	v, err := ParseView("CREATE VIEW V (VE = <=) AS SELECT R.A (AD = true) FROM R (RR = true)")
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseView(PrintView(v))
	if err != nil {
		t.Fatal(err)
	}
	if v.Signature() != again.Signature() {
		t.Error("public round trip changed the view")
	}
}

func TestPublicAPIDefaults(t *testing.T) {
	tr := DefaultTradeoff()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.W1 != 0.7 || tr.W2 != 0.3 {
		t.Errorf("weights = %g, %g", tr.W1, tr.W2)
	}
	cm := DefaultCostModel()
	if cm.JoinSelectivity != 0.005 || cm.BlockingFactor != 10 {
		t.Errorf("cost model = %+v", cm)
	}
}

func TestPublicAPIRenameKeepsViewWorking(t *testing.T) {
	sys := buildPartsSystem(t)
	view, err := sys.DefineView(context.Background(), `CREATE VIEW V AS SELECT Parts.Name FROM Parts WHERE Parts.Price > 15`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.ApplyChange(context.Background(), RenameRelation("Parts", "Inventory")); err != nil {
		t.Fatal(err)
	}
	if view.Deceased {
		t.Fatal("rename should never kill a view")
	}
	if view.Def.From[0].Rel != "Inventory" {
		t.Errorf("FROM = %+v", view.Def.From)
	}
	if view.Extent.Card() != 2 {
		t.Errorf("extent after rename = %d", view.Extent.Card())
	}
	// Data updates keep flowing to the renamed relation.
	if _, err := sys.ApplyUpdate(context.Background(), InsertTuple("Inventory", Tuple{Int(8), Str("cog"), Int(80)})); err != nil {
		t.Fatal(err)
	}
	if view.Extent.Card() != 3 {
		t.Errorf("extent after post-rename insert = %d", view.Extent.Card())
	}
}

func TestPublicAPIExplain(t *testing.T) {
	sys := buildPartsSystem(t)
	view, err := sys.DefineView(context.Background(), `CREATE VIEW V AS
		SELECT P.Name, M.ID FROM Parts P, PartsMirror M
		WHERE P.PartID = M.ID AND P.Price > 10`)
	if err != nil {
		t.Fatal(err)
	}
	text, err := Explain(view.Def, sys.Space)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Plan V", "Dedup", "Project", "HashJoin", "Scan Parts AS P", "Scan PartsMirror AS M", "Filter"} {
		if !strings.Contains(text, want) {
			t.Errorf("Explain output missing %q:\n%s", want, text)
		}
	}
}
