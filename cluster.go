package eve

import (
	"repro/internal/shard"
	"repro/internal/space"
)

// Cluster is the scale-out serving surface: N warehouse shards behind one
// logical writer and a lock-free composite read path. Views partition
// across shards by a stable hash of their definition signature (structural
// twins co-locate), base data replicates to every shard, and
// Cluster.Snapshot returns a ClusterVersion whose Query fans route-matching
// out to the shards that could hold a matching view, picks the globally
// cheapest provably correct route under the same page-cost model as the
// single system, and answers checksum-identically to an unsharded System
// over the same space. See internal/shard for the full design contract
// (placement, write fan-out determinism, pruned read fan-out).
//
//	cl, err := eve.NewCluster(eve.WithShards(4), eve.WithSpace(sp))
//	if err != nil { ... }
//	if _, _, err := cl.DefineView(context.Background(), src); err != nil { ... }
//	res, err := cl.Query(ctx, "SELECT A1 FROM W1 WHERE A1 > 10")
type Cluster struct {
	*shard.Cluster
}

// ClusterVersion is one pinned composite snapshot: the cluster's
// registration log plus one immutable Version per shard, with monotone
// per-shard sequence numbers and per-shard (not global) consistency.
type ClusterVersion = shard.ClusterVersion

// NewCluster assembles a sharded EVE cluster from the same functional
// options as New. WithShards picks the cluster size (default 1 — the
// drop-in baseline the scale benchmarks compare against); every other knob
// (WithTopK, WithTradeoff, WithObserver, ...) applies to each shard
// identically, with a WithObserver observer shared across shards so its
// atomic counters and per-phase timings aggregate cluster-wide. The
// WithSpace space is deep-cloned per shard and never mutated afterwards —
// drive all writes through the cluster.
func NewCluster(opts ...Option) (*Cluster, error) {
	c, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	n := c.shards
	if n == 0 {
		n = 1
	}
	sp := c.space
	if sp == nil {
		sp = space.New()
	}
	sc, err := shard.New(n, sp, c.configure)
	if err != nil {
		return nil, err
	}
	return &Cluster{Cluster: sc}, nil
}
