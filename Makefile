GO ?= go

.PHONY: build test bench bench-wide vet doclint doc ci

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Planner and pipeline micro-benchmarks (before/after comparison).
bench:
	$(GO) test -run='^$$' -bench='BenchmarkEvaluate(Planned|Naive)|BenchmarkApplyChangePipeline' -benchtime=5x .

# Rewriting-search benchmark: exhaustive enumerate-then-rank vs the pruned
# top-K search on wide views. The exhaustive side is intentionally slow —
# that is the point being measured.
bench-wide:
	$(GO) test -run='^$$' -bench=BenchmarkSynchronizeWide -benchtime=1x .

vet:
	$(GO) vet ./...

# Fail if any exported identifier in the root eve package or internal/...
# lacks a doc comment, or any linted package lacks a package comment.
doclint:
	$(GO) run ./cmd/doclint

# Serve godoc locally when the godoc tool is installed; otherwise fall back
# to dumping the API documentation to the terminal.
doc:
	@command -v godoc >/dev/null 2>&1 && \
		echo "godoc listening on http://localhost:6060/pkg/repro/" && godoc -http=:6060 || \
		{ $(GO) doc -all .; for d in internal/*; do $(GO) doc -all ./$$d; done; }

ci: vet doclint build test
	$(GO) test -run='^$$' -bench=BenchmarkEvaluate -benchtime=1x ./...
