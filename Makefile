GO ?= go

.PHONY: build test bench vet ci

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Planner and pipeline micro-benchmarks (before/after comparison).
bench:
	$(GO) test -run='^$$' -bench='BenchmarkEvaluate(Planned|Naive)|BenchmarkApplyChangePipeline' -benchtime=5x .

vet:
	$(GO) vet ./...

ci: vet build test
	$(GO) test -run='^$$' -bench=BenchmarkEvaluate -benchtime=1x ./...
