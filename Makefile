GO ?= go

# Recipes pipe go test output through benchjson; without pipefail the pipe
# would report only the last stage's status and mask a benchmark failure.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -c

.PHONY: build test stress fuzz cover bench bench-wide bench-churn bench-serve bench-plan bench-query bench-maintain bench-scale bench-compare vet lint race asan doclint vulncheck doc ci

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Dedicated race-detector stress pass: concurrent evolution sessions and
# ApplyChange loops on independent warehouses.
stress:
	$(GO) test -race -run Stress ./...

# Short native fuzzing pass over the E-SQL parser (the seed corpus always
# runs as part of plain `make test`).
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/esql

# Coverage profile with a per-function summary; the total prints last.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -n 1

# Planner and pipeline micro-benchmarks (before/after comparison).
bench:
	$(GO) test -run='^$$' -bench='BenchmarkEvaluate(Planned|Naive)|BenchmarkApplyChangePipeline' -benchtime=5x .

# Rewriting-search benchmark: exhaustive enumerate-then-rank vs the pruned
# top-K search on wide views. The exhaustive side is intentionally slow —
# that is the point being measured.
bench-wide:
	$(GO) test -run='^$$' -bench=BenchmarkSynchronizeWide -benchtime=1x .

# Evolution-session benchmark: the cold per-change ApplyChange loop vs one
# EvolveBatch over a scenario.Churn history (240 changes, 20 twin views).
bench-churn:
	$(GO) test -run='^$$' -bench=BenchmarkEvolveChurn -benchtime=3x .

# Serving-path benchmark: lock-free epoch reads vs the serialized baseline,
# plus the recompute path with/without the per-version plan cache, at
# 1/4/16 reader goroutines against continuous churn. The parsed grid is
# recorded in BENCH_serve.json so a regression shows up as a diff.
SERVE_BENCHTIME ?= 1s
bench-serve:
	$(GO) test -run='^$$' -bench=BenchmarkServeConcurrent -benchtime=$(SERVE_BENCHTIME) . \
		| $(GO) run ./cmd/benchjson -out BENCH_serve.json

# Columnar-executor benchmark: the tuple-at-a-time reference vs the
# vectorized batch path on the chain-join workloads (plus the naive
# evaluator baseline), and the chunk-size × cardinality grid in
# internal/plan. The parsed trajectory is recorded in BENCH_plan.json so
# the speedup — and any regression — shows up as a diff.
PLAN_BENCHTIME ?= 3x
bench-plan:
	$(GO) test -run='^$$' -bench='BenchmarkEvaluate(Planned|Naive|Tuple)|BenchmarkColumnarGrid' \
		-benchtime=$(PLAN_BENCHTIME) . ./internal/plan \
		| $(GO) run ./cmd/benchjson -out BENCH_plan.json

# Query-routing benchmark: the same ad-hoc query over a 4-way-join view
# answered from the maintained extent (view-hit), through a residual
# filter/project, and recomputed from base relations, at 1k/10k/100k
# tuples. The grid is recorded in BENCH_query.json; the acceptance bar is
# view-hit ≥5x faster than base-scan at 10k tuples.
QUERY_BENCHTIME ?= 3x
bench-query:
	$(GO) test -run='^$$' -bench=BenchmarkQueryRouted -benchtime=$(QUERY_BENCHTIME) . \
		| $(GO) run ./cmd/benchjson -out BENCH_query.json

# Delta-maintenance benchmark: bringing a join view up to date after a
# 16-update batch by Algorithm 1 delta propagation vs full recompute, at
# 10k/100k/1M-tuple extents. The grid is recorded in BENCH_maintain.json;
# the acceptance bar is delta ≥10x faster than recompute at 100k tuples.
MAINTAIN_BENCHTIME ?= 10x
bench-maintain:
	$(GO) test -run='^$$' -bench=BenchmarkMaintainDelta -benchtime=$(MAINTAIN_BENCHTIME) . \
		| $(GO) run ./cmd/benchjson -out BENCH_maintain.json

# Scale-out serving benchmark: aggregate routed-read throughput of the
# sharded cluster over the shards {1,2,4,8} × readers {1,4,16,64} grid,
# under a continuously churning writer (capability renames + data-update
# batches). The grid is recorded in BENCH_scale.json; the acceptance bar
# is 4-shard reads/s ≥2x 1-shard at 16 readers.
SCALE_BENCHTIME ?= 2s
bench-scale:
	$(GO) test -run='^$$' -bench=BenchmarkClusterScale -benchtime=$(SCALE_BENCHTIME) -timeout=30m . \
		| $(GO) run ./cmd/benchjson -out BENCH_scale.json

# Compare two saved `go test -bench` text outputs with benchstat when it
# is installed (go install golang.org/x/perf/cmd/benchstat@latest):
#
#	make bench-compare OLD=old.txt NEW=new.txt
bench-compare:
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat $(OLD) $(NEW); \
	else \
		echo "benchstat not installed; skipping (go install golang.org/x/perf/cmd/benchstat@latest)"; \
	fi

vet:
	$(GO) vet ./...

# Known-vulnerability scan over the module and its (stdlib-only)
# dependency graph. Skips gracefully where the tool is not installed, so
# offline development keeps working; CI installs it explicitly.
vulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# Static analysis: go vet plus the repository's own invariant linter
# (cmd/evevet — versionmut, cowcheck, knobguard, ctxflow, errlink,
# doccheck; see internal/analysis/doc.go). Any finding fails the build.
lint: vet
	$(GO) run ./cmd/evevet

# Deprecated alias: the doclint checks moved into the doccheck analyzer of
# `make lint` (cmd/evevet); this target remains so existing muscle memory
# and CI configs keep working.
doclint: lint

# Full race-detector suite. GORACE=halt_on_error=1 makes the first report
# fatal, so CI fails on the report itself rather than on whatever the
# corrupted schedule does afterwards.
race:
	GORACE=halt_on_error=1 $(GO) test -race -count=1 ./...

# Address-sanitizer smoke over the mutation-heavy packages. -asan needs
# cgo, a C toolchain, and platform support, so probe with a no-op build
# first and skip gracefully where any of that is missing.
asan:
	@if CGO_ENABLED=1 $(GO) build -asan -o /dev/null ./internal/relation 2>/dev/null; then \
		CGO_ENABLED=1 $(GO) test -asan -count=1 ./internal/relation ./internal/space ./internal/maintain ./internal/warehouse; \
	else \
		echo "go test -asan unsupported here (needs cgo + C toolchain); skipping"; \
	fi

# Serve godoc locally when the godoc tool is installed; otherwise fall back
# to dumping the API documentation to the terminal.
doc:
	@command -v godoc >/dev/null 2>&1 && \
		echo "godoc listening on http://localhost:6060/pkg/repro/" && godoc -http=:6060 || \
		{ $(GO) doc -all .; for d in internal/*; do $(GO) doc -all ./$$d; done; }

# CI runs the race suite once, with the coverage profile folded in; the
# dedicated stress step and the coverage summary reuse that single run.
# `test` and `cover` stay standalone targets for local iteration. lint
# (vet + evevet) runs first so an invariant violation fails before any
# test does.
ci: lint vulncheck build stress
	$(GO) test -race -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -n 1
	$(GO) test -run='^$$' -bench=BenchmarkEvaluate -benchtime=1x ./...
	$(GO) test -run='^$$' -bench=BenchmarkServeConcurrent -benchtime=1x . \
		| $(GO) run ./cmd/benchjson -out /dev/null
	$(GO) test -run='^$$' -bench='BenchmarkEvaluateTuple|BenchmarkColumnarGrid' \
		-benchtime=1x . ./internal/plan \
		| $(GO) run ./cmd/benchjson -out /dev/null
	$(GO) test -run='^$$' -bench=BenchmarkQueryRouted -benchtime=1x . \
		| $(GO) run ./cmd/benchjson -out /dev/null
	$(GO) test -run='^$$' -bench=BenchmarkMaintainDelta -benchtime=1x . \
		| $(GO) run ./cmd/benchjson -out /dev/null
	$(GO) test -run='^$$' -bench=BenchmarkClusterScale -benchtime=1x . \
		| $(GO) run ./cmd/benchjson -out /dev/null
