package eve

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/space"
	"repro/internal/warehouse"
)

// ErrInvalidOption reports a New option set that cannot form a valid
// system: a negative knob, trade-off parameters that fail validation, or an
// option combination with no coherent meaning. Every error New returns
// wraps it, so callers can match the whole class with
// errors.Is(err, eve.ErrInvalidOption) and read the specifics from the
// message.
var ErrInvalidOption = errors.New("invalid option")

// config collects the options of one New call before they are validated
// and frozen into a System.
type config struct {
	space           *space.Space
	topK            int
	workers         int
	shards          int // 0 = unset (1 for NewCluster; New rejects > 1)
	tradeoff        core.Tradeoff
	cost            core.CostModel
	dropVariants    bool
	maxDropVariants int // 0 = keep the synchronizer's default
	maxDropSet      bool
	observer        warehouse.Observer
}

// Option configures a System being assembled by New. Options validate
// eagerly where they can; cross-option validation happens once in New.
type Option func(*config) error

// optionErrf builds an ErrInvalidOption-wrapping error.
func optionErrf(format string, args ...interface{}) error {
	return fmt.Errorf("eve: %s: %w", fmt.Sprintf(format, args...), ErrInvalidOption)
}

// WithSpace builds the system over an existing information space (e.g. one
// produced by a scenario generator or persist.Load) instead of a fresh
// empty one. A nil space is an error.
func WithSpace(sp *Space) Option {
	return func(c *config) error {
		if sp == nil {
			return optionErrf("WithSpace(nil)")
		}
		c.space = sp
		return nil
	}
}

// WithTopK switches the ranking phase to the lazy, cost-bounded top-K
// rewriting search: per affected view only the k best-scoring rewritings
// are retained, and the exponential drop-variant spectrum is
// branch-and-bounded against the running K-th best QC score. k == 0 keeps
// the exhaustive enumerate-then-rank reference path; negative k is an
// error.
func WithTopK(k int) Option {
	return func(c *config) error {
		if k < 0 {
			return optionErrf("WithTopK(%d): k must be >= 0", k)
		}
		c.topK = k
		return nil
	}
}

// WithWorkers bounds the synchronization pipeline's worker pool. n == 0
// (the default) means one worker per available CPU; n == 1 forces the
// sequential behavior of the original implementation; negative n is an
// error.
func WithWorkers(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return optionErrf("WithWorkers(%d): n must be >= 0", n)
		}
		c.workers = n
		return nil
	}
}

// WithTradeoff replaces the paper's default QC-Model trade-off parameters.
// The parameters are validated at New (weights in range, ρ pairs summing to
// one); an invalid trade-off fails construction instead of silently
// skewing every ranking.
func WithTradeoff(t Tradeoff) Option {
	return func(c *config) error {
		c.tradeoff = t
		return nil
	}
}

// WithCostModel replaces Table 1's default maintenance-cost statistics.
func WithCostModel(cm CostModel) Option {
	return func(c *config) error {
		c.cost = cm
		return nil
	}
}

// WithDropVariants opts into the CVS-style drop-variant spectrum (footnote
// 2): for each base rewriting, every nonempty proper subset of its
// remaining dispensable SELECT items additionally dropped. The spectrum is
// exponential in view width; combine with WithTopK to search it lazily.
func WithDropVariants(on bool) Option {
	return func(c *config) error {
		c.dropVariants = on
		return nil
	}
}

// WithMaxDropVariants caps the drop-variant spectrum per base rewriting at
// the n lightest valid variants (default 32). It only means something with
// WithDropVariants(true); setting it while drop-variants stay disabled is
// an invalid combination and fails construction. n must be positive.
func WithMaxDropVariants(n int) Option {
	return func(c *config) error {
		if n <= 0 {
			return optionErrf("WithMaxDropVariants(%d): n must be > 0", n)
		}
		c.maxDropVariants = n
		c.maxDropSet = true
		return nil
	}
}

// WithShards sets the cluster size for NewCluster: registered views
// partition across n warehouse shards by a stable hash of their definition
// signature, base data replicates to every shard, and reads fan out and
// merge deterministically (see eve.Cluster). n must be at least 1;
// NewCluster without this option builds a single-shard cluster. New (the
// single-system constructor) accepts WithShards(1) as a no-op and rejects
// larger values — a multi-shard system is a Cluster, not a System.
func WithShards(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return optionErrf("WithShards(%d): n must be >= 1", n)
		}
		c.shards = n
		return nil
	}
}

// WithObserver installs an Observer on the synchronization pipeline. Hooks
// fire from worker goroutines, so the observer must be safe for concurrent
// use (see Observer). A nil observer is an error — omit the option instead.
func WithObserver(o Observer) Option {
	return func(c *config) error {
		if o == nil {
			return optionErrf("WithObserver(nil): omit the option instead")
		}
		c.observer = o
		return nil
	}
}

// New assembles an EVE system from functional options — the v2
// construction path. Configuration is validated and frozen here: an
// invalid knob or option combination returns an error wrapping
// ErrInvalidOption instead of a system that silently misbehaves. With no
// options, New(nil...) is NewSystem() with the paper's defaults over a
// fresh information space.
//
//	sys, err := eve.New(
//	    eve.WithSpace(sp),
//	    eve.WithTopK(5),
//	    eve.WithDropVariants(true),
//	    eve.WithObserver(metrics),
//	)
//
// After construction, retune a running system through the Set* methods
// (SetTopK, SetTradeoff, ...), which are safe to call concurrently with
// running passes, and read knobs back through the matching accessors
// (TopK, Tradeoff, ...). The v1 direct field pokes (sys.TopK = 5) no
// longer compile: the knobs are unexported behind the knob mutex, so a
// tuner can no longer tear a running pass.
func New(opts ...Option) (*System, error) {
	c, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	if c.shards > 1 {
		return nil, optionErrf("WithShards(%d): a multi-shard system is a Cluster — use NewCluster", c.shards)
	}
	sp := c.space
	if sp == nil {
		sp = space.New()
	}
	w := warehouse.New(sp)
	if err := c.configure(w); err != nil {
		return nil, err
	}
	return &System{Warehouse: w}, nil
}

// buildConfig folds the option list into one validated config — the shared
// front half of New and NewCluster.
func buildConfig(opts []Option) (*config, error) {
	c := &config{
		tradeoff: core.DefaultTradeoff(),
		cost:     core.DefaultCostModel(),
	}
	for _, opt := range opts {
		if opt == nil {
			return nil, optionErrf("nil Option")
		}
		if err := opt(c); err != nil {
			return nil, err
		}
	}
	if err := c.tradeoff.Validate(); err != nil {
		return nil, fmt.Errorf("eve: WithTradeoff: %w: %w", err, ErrInvalidOption)
	}
	if c.maxDropSet && !c.dropVariants {
		return nil, optionErrf("WithMaxDropVariants requires WithDropVariants(true)")
	}
	return c, nil
}

// configure applies the frozen config to one warehouse — the shared back
// half of New and NewCluster (which runs it once per shard, sharing one
// observer so its atomic counters aggregate cluster-wide).
func (c *config) configure(w *warehouse.Warehouse) error {
	w.SetTradeoff(c.tradeoff)
	w.SetCostModel(c.cost)
	w.SetTopK(c.topK)
	w.SetWorkers(c.workers)
	w.Synchronizer.EnumerateDropVariants = c.dropVariants
	if c.maxDropSet {
		w.Synchronizer.MaxDropVariants = c.maxDropVariants
	}
	if c.observer != nil {
		w.SetObserver(c.observer)
	}
	// warehouse.New published its initial version before the options above
	// landed; republish so a reader sampling Snapshot().Stats() at startup
	// sees the configured knob state, not the defaults.
	w.PublishVersion(nil)
	return nil
}
