package eve

// Race-detector stress: many goroutines drive evolution concurrently on
// independent warehouses — half through evolution sessions (EvolveBatch),
// half through the cold per-change ApplyChange loop — while each
// warehouse's own worker pool fans synchronization out underneath. Every
// shared-state discipline in the stack is exercised at once: the immutable
// pre-change Snapshot, the read-only phase-1 rankings, the write-isolated
// phase-2 adoptions, and the session's memo cache and footprint index.
//
// CI runs this under the race detector as a dedicated step:
//
//	go test -race -run Stress ./...

import (
	"context"
	"sync"
	"testing"

	"repro/internal/scenario"
)

// stressChurnParams keeps per-goroutine histories small enough that the
// race-instrumented run stays fast while still deceasing views, migrating
// twins onto donors, and skipping view-free changes.
func stressChurnParams(seed int64) scenario.ChurnParams {
	return scenario.ChurnParams{
		Families:          2,
		TwinsPerFamily:    3,
		Width:             5,
		Donors:            2,
		Spares:            3,
		SpareAttrs:        4,
		Changes:           60,
		Seed:              seed,
		FamilyDeleteRatio: 0.15,
		FamilyRenameRatio: 0.10,
		DonorRatio:        0.10,
		ReplaceableViews:  seed%2 == 0,
		AllowDecease:      true,
	}
}

// TestStressConcurrentSessions runs 8 goroutines, each replaying its own
// churn history on its own warehouse: even goroutines batch through an
// evolution session, odd ones loop over ApplyChange. Any cross-warehouse
// sharing bug or unsynchronized access inside the pipeline surfaces as a
// race report or a divergent survivor count.
func TestStressConcurrentSessions(t *testing.T) {
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	survivors := make([]int, goroutines)

	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Goroutine pairs (2k, 2k+1) share a seed: one replays through
			// a session, the other through the reference loop, so the
			// final survivor counts must agree pairwise.
			h, err := scenario.Churn(stressChurnParams(int64(100 + g/2)))
			if err != nil {
				errs[g] = err
				return
			}
			sp, err := h.BuildSpace()
			if err != nil {
				errs[g] = err
				return
			}
			sys := NewSystemOver(sp)
			sys.Synchronizer.EnumerateDropVariants = true
			for _, def := range h.Views() {
				if _, err := sys.RegisterView(context.Background(), def); err != nil {
					errs[g] = err
					return
				}
			}
			if g%2 == 0 {
				_, errs[g] = sys.EvolveBatch(context.Background(), h.Changes)
			} else {
				for _, c := range h.Changes {
					if _, err := sys.ApplyChange(context.Background(), c); err != nil {
						errs[g] = err
						return
					}
				}
			}
			survivors[g] = len(sys.LiveViews())
		}(g)
	}
	wg.Wait()

	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	for g := 0; g+1 < goroutines; g += 2 {
		if survivors[g] != survivors[g+1] {
			t.Errorf("seed pair %d: session kept %d views, reference loop %d",
				g/2, survivors[g], survivors[g+1])
		}
	}
}
