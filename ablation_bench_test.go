package eve

// Ablation benchmarks for the design choices DESIGN.md calls out: each one
// evaluates the same configuration under both settings of an accounting
// convention and reports the two results as metrics, making the sensitivity
// of the model to the convention visible in one bench run.

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/esql"
	"repro/internal/relation"
	"repro/internal/scenario"
	"repro/internal/space"
	"repro/internal/synchronize"
)

// CondWithConstant builds a local constant clause over R1 for the
// selectivity ablation.
func CondWithConstant() esql.CondItem {
	return esql.CondItem{Clause: esql.Clause{
		Left:  esql.AttrRef{Rel: "R1", Attr: "K"},
		Op:    relation.OpGT,
		Const: relation.Int(0),
	}}
}

// BenchmarkAblationIOBound contrasts Appendix A's lower and upper I/O
// bounds on the Table 1 single-site configuration (31 vs 62 I/Os).
func BenchmarkAblationIOBound(b *testing.B) {
	u := core.UpdateAtFirstScenario([]int{6}, 400, 100, 0.5)
	var lower, upper float64
	for i := 0; i < b.N; i++ {
		cm := core.DefaultCostModel()
		cm.Bound = core.IOLower
		lower = cm.IO(u)
		cm.Bound = core.IOUpper
		upper = cm.IO(u)
	}
	b.ReportMetric(lower, "IO-lower")
	b.ReportMetric(upper, "IO-upper")
}

// BenchmarkAblationNotification contrasts CF_M with and without the update
// notification message (the convention the paper's tables use vs the bare
// Section 6.2 formula).
func BenchmarkAblationNotification(b *testing.B) {
	u := core.UpdateAtFirstScenario([]int{2, 2, 2}, 400, 100, 0.5)
	var with, without float64
	for i := 0; i < b.N; i++ {
		cm := core.DefaultCostModel()
		cm.CountNotification = true
		with = cm.Messages(u)
		cm.CountNotification = false
		without = cm.Messages(u)
	}
	b.ReportMetric(with, "CF_M-with-notify")
	b.ReportMetric(without, "CF_M-bare")
}

// BenchmarkAblationDeltaWriteIO contrasts the I/O model with and without
// charging delta materialization at each visited site (the term that gives
// Figure 13(c) its slope).
func BenchmarkAblationDeltaWriteIO(b *testing.B) {
	u := core.UpdateAtFirstScenario([]int{1, 1, 1, 1, 1, 1}, 400, 100, 0.5)
	var with, without float64
	for i := 0; i < b.N; i++ {
		cm := core.DefaultCostModel()
		cm.Bound = core.IOLower
		without = cm.IO(u)
		cm.DeltaWriteIO = true
		with = cm.IO(u)
	}
	b.ReportMetric(without, "IO-join-only")
	b.ReportMetric(with, "IO-with-delta-writes")
}

// BenchmarkAblationDropVariants contrasts the SVS-style rewriting count
// with the CVS-style spectrum that also drops proper subsets of dispensable
// attributes.
func BenchmarkAblationDropVariants(b *testing.B) {
	sp, err := scenario.Exp4Space(1, false)
	if err != nil {
		b.Fatal(err)
	}
	orig := scenario.Exp4View()
	c := space.Change{Kind: space.DeleteRelation, Rel: "R2"}
	var baseN, cvsN int
	for i := 0; i < b.N; i++ {
		sy := synchronize.New(sp.MKB())
		rws, err := sy.Synchronize(context.Background(), orig, c)
		if err != nil {
			b.Fatal(err)
		}
		baseN = len(rws)
		sy.EnumerateDropVariants = true
		rws, err = sy.Synchronize(context.Background(), orig, c)
		if err != nil {
			b.Fatal(err)
		}
		cvsN = len(rws)
	}
	b.ReportMetric(float64(baseN), "rewritings-SVS")
	b.ReportMetric(float64(cvsN), "rewritings-CVS-spectrum")
}

// BenchmarkAblationSelectivityInExtents contrasts the extent estimator with
// and without local-selectivity application on a dropped-condition
// rewriting (Experiment 3's σ distinction).
func BenchmarkAblationSelectivityInExtents(b *testing.B) {
	sp, err := scenario.Exp4Space(1, false)
	if err != nil {
		b.Fatal(err)
	}
	// Experiment 4's view plus a local condition on R1 so σ has something
	// to act on (a pure join view is σ-invariant).
	orig := scenario.Exp4View()
	orig.Where = append(orig.Where, CondWithConstant())
	preCards := map[string]int{"R1": 400, "R2": 4000}
	var plain, withSigma float64
	for i := 0; i < b.N; i++ {
		est := core.NewEstimator(sp.MKB())
		plain = est.ViewSize(orig, preCards)
		est.ApplySelectivities = true
		withSigma = est.ViewSize(orig, preCards)
	}
	b.ReportMetric(plain, "viewsize-js-only")
	b.ReportMetric(withSigma, "viewsize-with-sigma")
}
