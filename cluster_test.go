package eve

import (
	"context"
	"errors"
	"testing"

	"repro/internal/exec"
	"repro/internal/scenario"
)

// clusterSpace builds a small populated churn space plus its harness views
// for the surface-level cluster tests.
func clusterSpace(t *testing.T) (*Space, []*ViewDef) {
	t.Helper()
	h, err := scenario.Churn(scenario.ChurnParams{
		Families: 2, TwinsPerFamily: 2, Width: 4, Donors: 1,
		Spares: 1, SpareAttrs: 2, Changes: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := h.BuildSpace()
	if err != nil {
		t.Fatal(err)
	}
	if err := scenario.Populate(sp, 30); err != nil {
		t.Fatal(err)
	}
	return sp, h.Views()
}

func TestWithShardsValidation(t *testing.T) {
	if _, err := New(WithShards(0)); !errors.Is(err, ErrInvalidOption) {
		t.Errorf("New(WithShards(0)): err = %v, want ErrInvalidOption", err)
	}
	if _, err := New(WithShards(4)); !errors.Is(err, ErrInvalidOption) {
		t.Errorf("New(WithShards(4)): err = %v, want ErrInvalidOption (use NewCluster)", err)
	}
	if _, err := New(WithShards(1)); err != nil {
		t.Errorf("New(WithShards(1)): %v, want nil (single shard is a System)", err)
	}
	if _, err := NewCluster(WithShards(2), WithTopK(-1)); !errors.Is(err, ErrInvalidOption) {
		t.Errorf("NewCluster with invalid knob: err = %v, want ErrInvalidOption", err)
	}
}

// NewCluster(WithShards(1)) over a space must answer every query with the
// same checksum as New over the same space — the drop-in guarantee the
// scale benchmarks compare against — and a 3-shard cluster must agree too.
func TestNewClusterDropInParity(t *testing.T) {
	sp, views := clusterSpace(t)
	sys, err := New(WithSpace(sp))
	if err != nil {
		t.Fatal(err)
	}
	m := &MetricsObserver{}
	cl1, err := NewCluster(WithSpace(sp))
	if err != nil {
		t.Fatal(err)
	}
	cl3, err := NewCluster(WithShards(3), WithSpace(sp), WithObserver(m))
	if err != nil {
		t.Fatal(err)
	}
	if cl3.Shards() != 3 || cl1.Shards() != 1 {
		t.Fatalf("cluster sizes = %d, %d", cl1.Shards(), cl3.Shards())
	}
	for _, def := range views {
		if _, err := sys.RegisterView(context.Background(), def); err != nil {
			t.Fatal(err)
		}
		for _, cl := range []*Cluster{cl1, cl3} {
			if _, _, err := cl.RegisterView(context.Background(), def); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !cl3.Ready() {
		t.Fatal("3-shard cluster not Ready")
	}
	queries := []string{
		"SELECT W1.A1, W1.A2, W1.A3, W1.A4 FROM W1",
		"SELECT W2.A1 FROM W2 WHERE W2.A1 > 50",
		"SELECT W1.K, W1.A2 FROM W1",
	}
	ctx := context.Background()
	for _, q := range queries {
		want, err := sys.Query(ctx, q)
		if err != nil {
			t.Fatalf("system %q: %v", q, err)
		}
		for _, cl := range []*Cluster{cl1, cl3} {
			got, err := cl.Query(ctx, q)
			if err != nil {
				t.Fatalf("%d-shard %q: %v", cl.Shards(), q, err)
			}
			if exec.RowChecksum(got) != exec.RowChecksum(want) {
				t.Fatalf("%d-shard %q diverged from unsharded system", cl.Shards(), q)
			}
		}
	}
	// The shared observer aggregates cluster-wide: each routed query reported
	// one PhaseQuery observation from its winning shard.
	if got := m.PhaseCount(PhaseQuery); got != uint64(len(queries)) {
		t.Errorf("cluster PhaseQuery count = %d, want %d", got, len(queries))
	}
}

// A cluster write drives every shard; the shared observer therefore counts
// per-replica work (N× the unsharded event volume), which is the cluster's
// true aggregate cost.
func TestClusterObserverCountsReplicaWork(t *testing.T) {
	sp, views := clusterSpace(t)
	m := &MetricsObserver{}
	cl, err := NewCluster(WithShards(2), WithSpace(sp), WithObserver(m))
	if err != nil {
		t.Fatal(err)
	}
	for _, def := range views {
		if _, _, err := cl.RegisterView(context.Background(), def); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.ApplyChange(context.Background(), RenameAttribute("SP1", "B1_1", "B1_X")); err != nil {
		t.Fatal(err)
	}
	if got := m.Changes(); got != 2 {
		t.Errorf("Changes = %d, want 2 (one per replica)", got)
	}
	// Every view lives on exactly one shard, so per-view maintenance totals
	// match the unsharded count even though the change landed twice.
	tup := make(Tuple, 5)
	for i := range tup {
		tup[i] = Int(int64(1000 + i))
	}
	if _, err := cl.ApplyUpdates(context.Background(), []Update{InsertTuple("W1", tup)}); err != nil {
		t.Fatal(err)
	}
	if got := m.PhaseCount(PhaseMaintain); got == 0 {
		t.Error("PhaseMaintain never observed through cluster ApplyUpdates")
	}
	if len(cl.Snapshot().Seqs()) != 2 { // composite snapshot stays usable
		t.Error("snapshot after updates lost a shard")
	}
}
