package eve

// Benchmark harness: one testing.B benchmark per table and figure in the
// paper's evaluation section (Section 7). Each benchmark regenerates its
// artifact through the same driver the `experiments` command uses and
// reports the headline quantity as a custom metric, so `go test -bench=.`
// doubles as the reproduction run.
//
//	BenchmarkExp1Survival       — Figure 12 (view life spans)
//	BenchmarkExp2Sites          — Figure 13 (a,b,c): cost factors vs #sites
//	BenchmarkExp3Distribution   — Figure 14 (a,b,c): bytes vs distribution
//	BenchmarkExp4Cardinality    — Table 4 + Figure 15: QC vs substitute size
//	BenchmarkExp5WorkloadM1     — Table 5
//	BenchmarkExp5WorkloadM3     — Table 6 + Figure 16
//	BenchmarkHeuristics         — Section 7.6 ablations
//
// Micro-benchmarks for the underlying machinery follow (synchronize, rank,
// evaluate, maintain).

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/experiments"
	"repro/internal/maintain"
	"repro/internal/relation"
	"repro/internal/scenario"
	"repro/internal/space"
	"repro/internal/synchronize"
)

// BenchmarkExp1Survival regenerates Figure 12: the life span of a view under
// successive capability changes for both weight settings.
func BenchmarkExp1Survival(b *testing.B) {
	var last experiments.Exp1Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunExp1(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if len(last.Outcomes) == 2 {
		b.ReportMetric(float64(last.Outcomes[0].Lifespan), "lifespan-w1>w2")
		b.ReportMetric(float64(last.Outcomes[1].Lifespan), "lifespan-w1<w2")
	}
}

// BenchmarkExp2Sites regenerates Figure 13: average CF_M, CF_T, CF_I/O per
// update for m = 1..6 sites.
func BenchmarkExp2Sites(b *testing.B) {
	p := scenario.DefaultParams()
	var last experiments.Exp2Result
	for i := 0; i < b.N; i++ {
		last = experiments.RunExp2(p, core.DefaultCostModel())
	}
	for _, row := range last.Rows {
		b.ReportMetric(row.Bytes, "bytes-m"+itoa(row.Sites))
	}
}

// BenchmarkExp3Distribution regenerates Figure 14 for its three join
// selectivities.
func BenchmarkExp3Distribution(b *testing.B) {
	p := scenario.DefaultParams()
	var last experiments.Exp3Result
	for i := 0; i < b.N; i++ {
		for _, js := range []float64{0.001, 0.0022, 0.005} {
			last = experiments.RunExp3(p, js, core.DefaultCostModel())
		}
	}
	if len(last.Rows) > 0 {
		b.ReportMetric(last.Rows[0].Bytes, "bytes-first-group")
	}
}

// BenchmarkExp4Cardinality regenerates Table 4 / Figure 15 (all three
// trade-off cases).
func BenchmarkExp4Cardinality(b *testing.B) {
	var last experiments.Exp4Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunExp4(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if len(last.Cases) > 0 && len(last.Cases[0].Rows) == 5 {
		b.ReportMetric(last.Cases[0].Rows[2].QC, "QC-V3-case1")
	}
}

// BenchmarkExp5WorkloadM1 regenerates Table 5.
func BenchmarkExp5WorkloadM1(b *testing.B) {
	var last experiments.Exp5Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunExp5(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if len(last.M1) == 5 {
		b.ReportMetric(last.M1[2].QC, "QC-V3-M1")
	}
}

// BenchmarkExp5WorkloadM3 regenerates Table 6 / Figure 16.
func BenchmarkExp5WorkloadM3(b *testing.B) {
	var last experiments.Exp5Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunExp5(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if len(last.M3) == 6 {
		b.ReportMetric(last.M3[5].Bytes, "CF_T-m6")
		b.ReportMetric(last.M3[5].Messages, "CF_M-m6")
		b.ReportMetric(last.M3[5].IO, "CF_IO-m6")
	}
}

// BenchmarkHeuristics runs the Section 7.6 ablation checks.
func BenchmarkHeuristics(b *testing.B) {
	var holds int
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunHeuristics(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		holds = 0
		for _, c := range r.Checks {
			if c.Holds {
				holds++
			}
		}
	}
	b.ReportMetric(float64(holds), "heuristics-holding")
}

// --- micro-benchmarks -----------------------------------------------------

// BenchmarkSynchronizeDeleteRelation measures legal-rewriting generation on
// the Experiment 4 MKB (five PC substitutes).
func BenchmarkSynchronizeDeleteRelation(b *testing.B) {
	sp, err := scenario.Exp4Space(1, false)
	if err != nil {
		b.Fatal(err)
	}
	orig := scenario.Exp4View()
	sy := synchronize.New(sp.MKB())
	c := space.Change{Kind: space.DeleteRelation, Rel: "R2"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sy.Synchronize(context.Background(), orig, c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRankRewritings measures QC scoring of the Experiment 4
// candidates.
func BenchmarkRankRewritings(b *testing.B) {
	sp, err := scenario.Exp4Space(1, false)
	if err != nil {
		b.Fatal(err)
	}
	orig := scenario.Exp4View()
	sy := synchronize.New(sp.MKB())
	rws, err := sy.Synchronize(context.Background(), orig, space.Change{Kind: space.DeleteRelation, Rel: "R2"})
	if err != nil {
		b.Fatal(err)
	}
	est := core.NewEstimator(sp.MKB())
	preCards := map[string]int{"R1": 400, "R2": 4000}
	tr, cm := core.DefaultTradeoff(), core.DefaultCostModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cands := make([]*core.Candidate, 0, len(rws))
		for _, rw := range rws {
			cands = append(cands, &core.Candidate{
				Rewriting: rw,
				Sizes:     est.Sizes(orig, rw, preCards),
				Scenario:  core.UniformScenario([]int{1}, 4000, 100, 0.5),
			})
		}
		if _, err := core.Rank(orig, cands, tr, cm); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateJoinView measures the executor on the travel scenario's
// two-way join.
func BenchmarkEvaluateJoinView(b *testing.B) {
	sp, err := scenario.TravelSpace(7)
	if err != nil {
		b.Fatal(err)
	}
	def := MustParseView(scenario.AsiaCustomerESQL)
	q, err := exec.Qualify(def, sp)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec.Evaluate(context.Background(), q, sp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncrementalMaintenance measures Algorithm 1 on alternating
// insert/delete updates over the travel join view.
func BenchmarkIncrementalMaintenance(b *testing.B) {
	sp, err := scenario.TravelSpace(7)
	if err != nil {
		b.Fatal(err)
	}
	def := MustParseView(scenario.AsiaCustomerESQL)
	q, err := exec.Qualify(def, sp)
	if err != nil {
		b.Fatal(err)
	}
	ext, err := exec.Evaluate(context.Background(), q, sp)
	if err != nil {
		b.Fatal(err)
	}
	m := maintain.New(sp, q, ext)
	tuple := relation.Tuple{
		relation.String("Benchy"), relation.String("Tokyo"),
		relation.String("JL"), relation.Int(20270101),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kind := maintain.Insert
		if i%2 == 1 {
			kind = maintain.Delete
		}
		if _, err := m.Apply(context.Background(), maintain.Update{Kind: kind, Rel: "FlightRes", Tuple: tuple}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyticCostFactors measures the closed-form cost model alone.
func BenchmarkAnalyticCostFactors(b *testing.B) {
	cm := core.DefaultCostModel()
	u := core.UpdateAtFirstScenario([]int{2, 2, 2}, 400, 100, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cm.Factors(u)
	}
}

func itoa(n int) string {
	return string(rune('0' + n))
}
