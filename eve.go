// Package eve is the public API of the EVE / QC-Model reproduction: an
// evolvable view environment that keeps materialized views alive when the
// information sources underneath them change their schemas, and ranks the
// alternative (generally non-equivalent) query rewritings by trading off
// quality (degree of divergence from the original view) against long-term
// incremental maintenance cost.
//
// The implementation follows Lee, Koeller, Nica, and Rundensteiner,
// "Data Warehouse Evolution: Trade-offs between Quality and Cost of Query
// Rewritings" (WPI-CS-TR-98-2 / ICDE 1999).
//
// # Quickstart
//
//	sys, err := eve.New() // defaults; see Option for the knobs
//	if err != nil { ... }
//	if _, err := sys.Space.AddSource("IS1"); err != nil { ... }
//	// ... add relations and MKB constraints to sys.Space ...
//	view, err := sys.DefineView(context.Background(), `CREATE VIEW V (VE = ~) AS
//	    SELECT R.A (AD = true, AR = true) FROM R (RR = true)`)
//	if err != nil { ... }
//	results, err := sys.ApplyChange(ctx, eve.DeleteRelation("R"))
//
// See the examples/ directory for complete programs, and the README's
// "v2 API" section for the v1→v2 migration table.
//
// # The v2 surface
//
// Construction is option-based and validated: eve.New(eve.WithTopK(5),
// eve.WithDropVariants(true), ...) freezes a coherent configuration or
// fails with ErrInvalidOption. Every heavy entry point (ApplyChange,
// EvolveBatch, Stream, Evaluate) takes a context.Context and honors
// cancellation with an exact consistency contract: a cancelled pass either
// never landed its change or fully adopted it, and a cancelled batch keeps
// exactly its landed prefix (see System.ApplyChange). Failures surface
// through a typed taxonomy — sentinels like ErrViewNotFound and
// ErrNoRewriting for errors.Is, structured types like *ParseError and
// *ChangeError for errors.As. The pipeline is observable: WithObserver
// installs OnChange/OnSync/OnAdopt/OnDecease hooks (MetricsObserver is the
// ready-made counter set).
//
// # Serving reads during evolution
//
// The system publishes an immutable Version at every commit point (view
// registration, each ApplyChange pass, each coalesced session pass), so
// any number of reader goroutines can serve queries lock-free while the
// evolution writer runs: System.Serve(ctx, name) answers from the latest
// version, System.Snapshot() pins one version for a multi-read
// transaction. A reader never observes a half-applied pass, and versions
// it holds are never mutated by later passes (adoption is copy-on-write).
// Per-version compiled plans are cached, so the steady-state read is one
// atomic load plus one plan execution. See Version.
//
// # Data updates
//
// Base-data changes flow through System.ApplyUpdates (or ApplyUpdate for a
// single tuple): the batch collapses into net per-relation insert/delete
// deltas — charging each update's source notification exactly once — the
// touched base relations are replaced copy-on-write, and every live view's
// extent is incrementally maintained per the paper's Algorithm 1, with the
// deltas batched through the same columnar operators that compute full
// extents and folded under derivation counting. One new Version publishes
// per batch. Readers are never quiesced: a snapshot acquired before the
// batch keeps serving its captured relations and extents unchanged, and the
// updated state becomes visible by acquiring the next version. The returned
// Metrics (messages, bytes, I/Os) are the measured counterparts of the
// QC-Model's analytic maintenance-cost factors:
//
//	metrics, err := sys.ApplyUpdates(ctx, []eve.Update{
//	    eve.InsertTuple("R", eve.Tuple{eve.Int(4), eve.Int(40)}),
//	    eve.DeleteTuple("R", eve.Tuple{eve.Int(1), eve.Int(10)}),
//	})
//
// Updates addressed to a relation the space does not hold fail with
// ErrUnknownRelation.
//
// # Querying through views
//
// Beyond reading whole views, System.Query answers arbitrary E-SQL SELECTs
// and transparently routes each one to the cheapest provably correct
// source: a live view's maintained extent verbatim, the extent plus a
// residual filter/project, or recomputation from base relations.
// Correctness comes from MISD containment reasoning (clause implication and
// PC ≡ relation substitution against the version-captured constraint
// snapshot), cost from the same page-I/O model that prices maintenance, so
// "answer from the view" and "maintain the view" are one decision model:
//
//	res, err := sys.Query(ctx, "SELECT A, B FROM R WHERE A > 1")
//	r, err := sys.Snapshot().RouteQuery("SELECT A FROM R WHERE A > 1 AND B < 25")
//	// r.Kind is RouteViewExtent / RouteViewResidual / RouteBase
//
// Routing decisions are cached per version and per query signature; every
// republication (including data updates) drops the route and plan caches
// together, so a cached route never outlives the state it was priced
// against. Routed answers are continuously cross-checked against base-only
// evaluation by an order-insensitive row-checksum differential suite.
//
// # Execution and debugging
//
// View evaluation compiles each definition into an explicit physical plan
// (scan with zero-copy column re-binding, pushed-down filters, hash joins
// ordered by MKB cardinality, projection, set-semantics dedup; see
// internal/plan). Explain renders the plan the executor would run:
//
//	text, _ := eve.Explain(view.Def, sys.Space)
//	fmt.Println(text)
//	// Plan V
//	// Dedup → V [est=200]
//	// └─ Project [A] [est=200]
//	//    └─ Filter [R.A > 1] [est=200] ...
//
// System.ApplyChange synchronizes affected views on a bounded worker pool
// (eve.WithWorkers; default one worker per CPU) while always returning
// results in view registration order.
//
// # Rewriting search
//
// Two search paths generate and rank a view's legal rewritings:
//
//   - Exhaustive (the default, TopK() == 0): every legal rewriting —
//     including, when Synchronizer.EnumerateDropVariants is set, the
//     CVS-style 2^width spectrum of drop-variants — is materialized, scored
//     by the QC-Model, and sorted. This is the executable reference
//     matching the paper's enumerate-then-rank presentation.
//
//   - Lazy top-K (TopK() > 0, via WithTopK or SetTopK): base rewritings are scored eagerly,
//     and each base's drop-variant spectrum is streamed best-first and
//     branch-and-bounded against the running K-th best QC score, so
//     variants that cannot enter the ranking are never built. On wide
//     views (10–20 dispensable attributes) this is orders of magnitude
//     faster while returning the same winner and the same top-K scores as
//     the exhaustive path (a guarantee enforced by differential property
//     tests; see internal/warehouse.SearchTopK for the argument).
//
//     sys, _ := eve.New(eve.WithTopK(5), eve.WithDropVariants(true))
//     results, _ := sys.ApplyChange(ctx, eve.DeleteRelation("R"))
package eve

import (
	"context"
	"iter"

	"repro/internal/core"
	"repro/internal/esql"
	"repro/internal/evolve"
	"repro/internal/exec"
	"repro/internal/maintain"
	"repro/internal/misd"
	"repro/internal/persist"
	"repro/internal/relation"
	"repro/internal/space"
	"repro/internal/synchronize"
	"repro/internal/warehouse"
)

// System is the assembled EVE instance: information space + MKB + view
// knowledge base + synchronizer + QC ranker + maintainer, plus the
// evolution-session engine for batched change streams. The embedded
// warehouse is the paper's Figure 1 system; Session and EvolveBatch expose
// internal/evolve's amortized driver on top of it.
type System struct {
	*warehouse.Warehouse

	session *evolve.Session
}

// Session returns the system's evolution session, creating it on first
// use. The session persists across calls so its footprint index amortizes
// over the system's whole change history; see evolve.Session for the
// ownership contract.
func (s *System) Session() *evolve.Session {
	if s.session == nil {
		s.session = evolve.NewSession(s.Warehouse)
	}
	return s.session
}

// EvolveBatch applies a stream of capability changes through the evolution
// session: changes whose footprint misses every live view skip the
// synchronization pipeline, rewriting searches are memoized across
// structurally identical views, and compatible consecutive changes
// coalesce into a single synchronize→rank→adopt pass. The outcome is
// identical to calling ApplyChange once per change (the step-by-step
// reference the differential tests replay); only the work is smaller.
//
// Cancelling ctx returns the landed steps with ctx.Err() within one
// coalesced pass: every returned step has fully adopted or deceased its
// affected views, and nothing after the landed prefix has touched the
// space.
func (s *System) EvolveBatch(ctx context.Context, changes []Change) ([]evolve.StepResult, error) {
	return s.Session().EvolveBatch(ctx, changes)
}

// Snapshot acquires the latest published warehouse version — the lock-free
// read surface for serving queries while the system evolves. One atomic
// load, no locks, never nil; see Version for the consistency contract (a
// reader never observes a half-applied pass, and later passes never mutate
// an acquired version). Use one Snapshot for a multi-read transaction that
// must be internally consistent; call again to pick up newer commits.
//
//	v := sys.Snapshot()
//	for _, name := range v.ViewNames() {
//	    ext, err := v.Evaluate(ctx, name) // all reads see one commit point
//	    ...
//	}
func (s *System) Snapshot() *Version { return s.Acquire() }

// Serve evaluates the named view against the latest published version —
// the one-call serving read path, equivalent to
// s.Snapshot().Evaluate(ctx, name). It is lock-free and safe to call from
// any number of goroutines concurrently with ApplyChange, EvolveBatch, and
// Stream; each call sees the most recent commit point. Unknown names return
// ErrViewNotFound, deceased views ErrViewDeceased.
func (s *System) Serve(ctx context.Context, name string) (*Relation, error) {
	return s.Acquire().Evaluate(ctx, name)
}

// Query answers an ad-hoc E-SQL SELECT against the latest published
// version, transparently routing it to the cheapest provably correct
// source — a live view's maintained extent (verbatim or with a residual
// filter/project) or the base relations. Equivalent to
// s.Snapshot().Query(ctx, sql); use Snapshot directly to inspect the
// routing decision (Version.RouteQuery) or to pin one version across
// several queries. Lock-free and safe to call concurrently with evolution.
func (s *System) Query(ctx context.Context, sql string) (*Relation, error) {
	return s.Acquire().Query(ctx, sql)
}

// Stream drives the system from an unbounded change feed, yielding one
// StepResult per landed change in feed order. Consecutive compatible
// changes coalesce into single passes exactly as EvolveBatch coalesces
// them, so results lag their changes by at most one pass. The sequence
// ends after the first error (yielded as the final element): a rejected
// change (*ChangeError), an adopt failure, or ctx.Err() after a
// cancellation — with the same landed-prefix guarantee as EvolveBatch.
//
//	for step, err := range sys.Stream(ctx, feed) {
//	    if err != nil { ... }
//	    // step.Change landed; step.Results cover its affected views
//	}
func (s *System) Stream(ctx context.Context, changes iter.Seq[Change]) iter.Seq2[evolve.StepResult, error] {
	return s.Session().Stream(ctx, changes)
}

// Re-exported core types. The internal packages remain the source of truth;
// these aliases give library users one import path.
type (
	// View is a registered materialized view.
	View = warehouse.View
	// StepResult reports one change of an evolution batch.
	StepResult = evolve.StepResult
	// EvolveSession is the evolution-session engine driving a system
	// through batched change streams (System.Session).
	EvolveSession = evolve.Session
	// SyncResult reports one view's outcome for a capability change.
	SyncResult = warehouse.SyncResult
	// Version is one immutable published warehouse state — the lock-free
	// serving snapshot System.Snapshot returns (see warehouse.Version for
	// the full consistency contract).
	Version = warehouse.Version
	// VersionView is one view captured in a Version.
	VersionView = warehouse.VersionView
	// Route is a priced, executable answer plan for one routed query
	// (Version.RouteQuery).
	Route = warehouse.Route
	// RouteKind classifies how a routed query is answered.
	RouteKind = warehouse.RouteKind

	// ViewDef is a parsed E-SQL view definition.
	ViewDef = esql.ViewDef
	// ExtentParam is the VE view-evolution parameter.
	ExtentParam = esql.ExtentParam

	// Change is a capability (schema) change at an information source.
	Change = space.Change
	// Space is the information space.
	Space = space.Space
	// Source is one information source.
	Source = space.Source

	// Relation is an in-memory set of tuples over a schema.
	Relation = relation.Relation
	// Schema describes a relation's attributes.
	Schema = relation.Schema
	// Attribute is one schema column.
	Attribute = relation.Attribute
	// Tuple is one row.
	Tuple = relation.Tuple
	// Value is one typed attribute value.
	Value = relation.Value

	// MKB is the meta knowledge base of source descriptions.
	MKB = misd.MKB
	// PCConstraint is a partial/complete information constraint.
	PCConstraint = misd.PCConstraint
	// JoinConstraint describes how two relations join meaningfully.
	JoinConstraint = misd.JoinConstraint
	// Fragment is one side of a PC constraint.
	Fragment = misd.Fragment
	// RelRef names a base relation.
	RelRef = misd.RelRef

	// Rewriting is one legal rewriting of a view.
	Rewriting = synchronize.Rewriting
	// Synchronizer generates legal rewritings.
	Synchronizer = synchronize.Synchronizer

	// Tradeoff holds the QC-Model's weights and trade-off parameters.
	Tradeoff = core.Tradeoff
	// CostModel holds the maintenance-cost statistics and conventions.
	CostModel = core.CostModel
	// Candidate is a scored rewriting.
	Candidate = core.Candidate
	// Ranking is the QC-ordered set of candidates.
	Ranking = core.Ranking
	// Workload is a configured workload model (M1–M4).
	Workload = core.Workload
	// Update is one base-data change routed through view maintenance.
	Update = maintain.Update
	// Delta is the net per-relation effect of a collapsed update batch.
	Delta = maintain.Delta
	// Metrics are measured maintenance costs.
	Metrics = maintain.Metrics
)

// Value constructors.
var (
	// Int builds an integer value.
	Int = relation.Int
	// Float builds a floating-point value.
	Float = relation.Float
	// Str builds a string value.
	Str = relation.String
	// Bool builds a boolean value.
	Bool = relation.Bool
)

// Workload model identifiers (Section 6.6).
const (
	M1 = core.M1
	M2 = core.M2
	M3 = core.M3
	M4 = core.M4
)

// VE parameter values (Figure 3).
const (
	ExtentAny      = esql.ExtentAny
	ExtentEqual    = esql.ExtentEqual
	ExtentSuperset = esql.ExtentSuperset
	ExtentSubset   = esql.ExtentSubset
)

// PC containment relations.
const (
	Subset   = misd.Subset
	Equal    = misd.Equal
	Superset = misd.Superset
)

// Query route kinds (Version.RouteQuery).
const (
	RouteBase         = warehouse.RouteBase
	RouteViewExtent   = warehouse.RouteViewExtent
	RouteViewResidual = warehouse.RouteViewResidual
)

// Attribute types.
const (
	TypeInt    = relation.TypeInt
	TypeFloat  = relation.TypeFloat
	TypeString = relation.TypeString
	TypeBool   = relation.TypeBool
)

// NewSystem creates an EVE system over a fresh information space with the
// paper's default trade-off parameters and cost model.
//
// Deprecated: use New. NewSystem remains for v1 compatibility, but the v1
// habit of tuning the returned system by assigning exported fields
// (sys.TopK = 5) no longer compiles: the knobs live behind the knob mutex
// and are tuned through the Set* methods (SetTopK, SetWorkers,
// SetTradeoff, SetCostModel), which are safe even against a running pass.
func NewSystem() *System { return &System{Warehouse: warehouse.New(space.New())} }

// NewSystemOver creates an EVE system over an existing information space
// (e.g. one built by a scenario generator).
//
// Deprecated: use New with WithSpace. See NewSystem.
func NewSystemOver(sp *Space) *System { return &System{Warehouse: warehouse.New(sp)} }

// SaveSpace writes an information space to path as the versioned JSON
// document internal/persist defines.
func SaveSpace(path string, sp *Space) error { return persist.SaveFile(path, sp) }

// LoadSpace reads an information space previously written by SaveSpace. A
// document written by a newer format returns a *VersionError.
func LoadSpace(path string) (*Space, error) { return persist.LoadFile(path) }

// NewSpace creates an empty information space with its MKB.
func NewSpace() *Space { return space.New() }

// NewSchema builds a schema; it panics on duplicate attribute names.
func NewSchema(attrs ...Attribute) *Schema { return relation.NewSchema(attrs...) }

// NewRelation creates an empty relation.
func NewRelation(name string, schema *Schema) *Relation { return relation.New(name, schema) }

// ParseView parses an E-SQL CREATE VIEW statement.
func ParseView(src string) (*ViewDef, error) { return esql.Parse(src) }

// MustParseView is ParseView that panics on error, for fixtures and tests.
func MustParseView(src string) *ViewDef { return esql.MustParse(src) }

// PrintView renders a view definition back to E-SQL.
func PrintView(v *ViewDef) string { return esql.Print(v) }

// ParseQuery parses an ad-hoc E-SQL SELECT (no CREATE VIEW header) into a
// definition suitable for System.Query routing or Evaluate.
func ParseQuery(src string) (*ViewDef, error) { return esql.ParseQuery(src) }

// MustParseQuery is ParseQuery that panics on error, for fixtures and tests.
func MustParseQuery(src string) *ViewDef { return esql.MustParseQuery(src) }

// Evaluate materializes a view over a space (the Query Executor). The view
// is compiled to a physical plan (internal/plan) and executed; ctx is
// observed between plan operators and every few thousand tuples inside
// them, so cancelling a long evaluation returns ctx.Err() promptly and no
// partial extent.
func Evaluate(ctx context.Context, v *ViewDef, sp *Space) (*Relation, error) {
	return exec.Evaluate(ctx, v, sp)
}

// Explain renders the physical plan Evaluate would run for the view — one
// operator per line with cardinality estimates, for debugging and tests.
func Explain(v *ViewDef, sp *Space) (string, error) { return exec.Explain(v, sp) }

// DefaultTradeoff returns the paper's default parameters.
func DefaultTradeoff() Tradeoff { return core.DefaultTradeoff() }

// DefaultCostModel returns Table 1's statistics with the paper's accounting
// conventions.
func DefaultCostModel() CostModel { return core.DefaultCostModel() }

// DeleteRelation builds a delete-relation capability change.
func DeleteRelation(rel string) Change {
	return Change{Kind: space.DeleteRelation, Rel: rel}
}

// DeleteAttribute builds a delete-attribute capability change.
func DeleteAttribute(rel, attr string) Change {
	return Change{Kind: space.DeleteAttribute, Rel: rel, Attr: attr}
}

// RenameRelation builds a change-relation-name capability change.
func RenameRelation(rel, newName string) Change {
	return Change{Kind: space.RenameRelation, Rel: rel, NewName: newName}
}

// RenameAttribute builds a change-attribute-name capability change.
func RenameAttribute(rel, attr, newName string) Change {
	return Change{Kind: space.RenameAttribute, Rel: rel, Attr: attr, NewName: newName}
}

// AddAttribute builds an add-attribute capability change.
func AddAttribute(rel, attr string, t relation.Type) Change {
	return Change{Kind: space.AddAttribute, Rel: rel, Attr: attr, AttrType: t}
}

// InsertTuple builds an insert data update for routing through maintenance.
func InsertTuple(rel string, t Tuple) Update {
	return Update{Kind: maintain.Insert, Rel: rel, Tuple: t}
}

// DeleteTuple builds a delete data update.
func DeleteTuple(rel string, t Tuple) Update {
	return Update{Kind: maintain.Delete, Rel: rel, Tuple: t}
}
